/**
 * @file
 * Byte-interval sets over the device address space, used to describe
 * per-CTA global-memory footprints.
 *
 * The sliced injection engine (see DESIGN.md) needs exact byte-level
 * reasoning about which CTAs touch which global-memory ranges: the
 * golden run records every CTA's read and write intervals, the
 * independence analysis intersects them, and the sliced executor
 * consults "hazard" sets on every global access.  An IntervalSet keeps
 * a sorted vector of disjoint half-open [begin, end) ranges, which
 * makes membership tests a binary search and the set algebra a linear
 * merge -- cheap enough for the executor's hot path because real
 * kernels touch a handful of contiguous ranges per CTA.
 */

#ifndef FSP_SIM_FOOTPRINT_HH
#define FSP_SIM_FOOTPRINT_HH

#include <cstdint>
#include <vector>

namespace fsp::sim {

/** Half-open byte range [begin, end) of device addresses. */
struct Interval
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    bool empty() const { return begin >= end; }
    std::uint64_t bytes() const { return empty() ? 0 : end - begin; }

    bool
    operator==(const Interval &other) const
    {
        return begin == other.begin && end == other.end;
    }
};

/** A set of bytes stored as sorted, disjoint, non-adjacent intervals. */
class IntervalSet
{
  public:
    IntervalSet() = default;

    /** Insert [begin, end), merging with existing ranges. */
    void add(std::uint64_t begin, std::uint64_t end);

    /** Build from an arbitrary (unsorted, overlapping) interval list. */
    static IntervalSet fromUnsorted(std::vector<Interval> raw);

    bool empty() const { return ranges_.empty(); }

    /** Number of disjoint ranges. */
    std::size_t rangeCount() const { return ranges_.size(); }

    /** Total bytes covered. */
    std::uint64_t totalBytes() const;

    /**
     * Does any byte of [begin, end) belong to the set?  Inline: the
     * interpreter consults this on every global access of a sliced
     * run, and after merging the hazard set is usually a handful of
     * ranges, so the probe cost is the call itself.
     */
    bool
    intersectsRange(std::uint64_t begin, std::uint64_t end) const
    {
        if (begin >= end)
            return false;
        // First range whose end exceeds begin; the only candidate.
        const Interval *lo = ranges_.data();
        const Interval *hi = lo + ranges_.size();
        while (lo < hi) {
            const Interval *mid = lo + (hi - lo) / 2;
            if (begin < mid->end)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo != ranges_.data() + ranges_.size() && lo->begin < end;
    }

    /** Does any byte of @p other belong to the set? */
    bool intersects(const IntervalSet &other) const;

    /** Is every byte of [begin, end) in the set? */
    bool containsRange(std::uint64_t begin, std::uint64_t end) const;

    /** The subset of bytes inside [begin, end). */
    IntervalSet clipped(std::uint64_t begin, std::uint64_t end) const;

    /** Add every byte of @p other to this set. */
    void unionWith(const IntervalSet &other);

    /** Bytes of this set that are not in @p other. */
    IntervalSet subtract(const IntervalSet &other) const;

    const std::vector<Interval> &ranges() const { return ranges_; }

    bool
    operator==(const IntervalSet &other) const
    {
        return ranges_ == other.ranges_;
    }

  private:
    std::vector<Interval> ranges_;
};

/** One CTA's global-memory footprint from a fault-free run. */
struct CtaFootprint
{
    IntervalSet reads;  ///< bytes loaded from global memory
    IntervalSet writes; ///< bytes stored to global memory
};

} // namespace fsp::sim

#endif // FSP_SIM_FOOTPRINT_HH
