/**
 * @file
 * Kernel launch configuration: grid/block geometry, launch parameters,
 * shared-memory size and the per-thread dynamic-instruction budget that
 * backs hang detection.
 */

#ifndef FSP_SIM_LAUNCH_HH
#define FSP_SIM_LAUNCH_HH

#include <cstdint>

#include "sim/memory.hh"
#include "sim/types.hh"

namespace fsp::sim {

/** Launch configuration for one kernel invocation. */
struct LaunchConfig
{
    Dim3 grid;                 ///< CTAs per grid
    Dim3 block;                ///< threads per CTA
    ParamBuffer params;        ///< kernel arguments (ld.param space)
    std::uint32_t sharedBytes = 0; ///< shared memory per CTA

    /**
     * Per-thread dynamic-instruction budget; a thread exceeding it is
     * declared hung (the paper's "other" outcome).  0 selects a large
     * default suitable for fault-free profiling runs.
     */
    std::uint64_t maxDynInstrPerThread = 0;

    /** Total threads in the launch. */
    std::uint64_t
    threadCount() const
    {
        return grid.count() * block.count();
    }
};

} // namespace fsp::sim

#endif // FSP_SIM_LAUNCH_HH
