/**
 * @file
 * Implementation of instruction-wise pruning.
 */

#include "pruning/instr_common.hh"

#include <algorithm>

#include "util/logging.hh"

namespace fsp::pruning {

TraceAlignment
alignTraces(const std::vector<sim::DynRecord> &base,
            const std::vector<sim::DynRecord> &other)
{
    // Records align when they are the same static instruction; a guard
    // outcome difference (destBits mismatch) does not break the
    // alignment -- weight folding is gated on equal widths separately.
    auto match = [](const sim::DynRecord &a, const sim::DynRecord &b) {
        return a.staticIndex == b.staticIndex;
    };

    TraceAlignment alignment;
    std::size_t limit = std::min(base.size(), other.size());

    while (alignment.prefixLen < limit &&
           match(base[alignment.prefixLen], other[alignment.prefixLen])) {
        alignment.prefixLen++;
    }

    std::size_t suffix_limit = limit - alignment.prefixLen;
    while (alignment.suffixLen < suffix_limit &&
           match(base[base.size() - 1 - alignment.suffixLen],
                 other[other.size() - 1 - alignment.suffixLen])) {
        alignment.suffixLen++;
    }
    return alignment;
}

std::vector<std::uint64_t>
alignmentBoundaries(const std::vector<sim::DynRecord> &base,
                    const std::vector<sim::DynRecord> &trace)
{
    TraceAlignment alignment = alignTraces(base, trace);
    std::size_t cuts[2] = {alignment.prefixLen,
                           trace.size() - alignment.suffixLen};

    // Convert record-index cut points to executed-record ordinals.
    std::vector<std::uint64_t> boundaries;
    std::uint64_t executed = 0;
    std::size_t ci = 0;
    for (std::size_t i = 0; i <= trace.size() && ci < 2; ++i) {
        while (ci < 2 && cuts[ci] == i) {
            boundaries.push_back(executed);
            ++ci;
        }
        if (i < trace.size() && trace[i].executed())
            ++executed;
    }
    return boundaries;
}

InstrPruningStats
applyInstructionPruning(std::vector<ThreadPlan> &plans, double similarity)
{
    InstrPruningStats stats;
    if (plans.size() < 2)
        return stats;

    // Process plans heaviest-first (ties broken by thread id for
    // determinism); each plan may fold into the best-matching earlier
    // (heavier or equal) plan.  Direction matters: folding transfers
    // the folded plan's outcome estimation onto its partner, so the
    // rare classes must fold into the dominant ones -- never the other
    // way around -- to bound the extrapolation weight at risk.
    auto plan_weight = [&](std::size_t i) {
        return plans[i].representedWeight();
    };
    std::vector<std::size_t> order(plans.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  double wa = plan_weight(a), wb = plan_weight(b);
                  if (wa != wb)
                      return wa > wb;
                  return plans[a].thread < plans[b].thread;
              });

    for (std::size_t oi = 1; oi < order.size(); ++oi) {
        ThreadPlan &other = plans[order[oi]];
        stats.candidateDynInstrs += other.trace.size();

        // Best partner: the earlier plan sharing the longest common
        // block that covers `similarity` of both traces.
        std::size_t best_partner = order.size();
        TraceAlignment best_alignment;
        for (std::size_t bi = 0; bi < oi; ++bi) {
            ThreadPlan &candidate = plans[order[bi]];
            // Pilots of the same thread group exist precisely to be
            // injected independently; never fold them together.
            if (candidate.groupId == other.groupId)
                continue;
            TraceAlignment alignment =
                alignTraces(candidate.trace, other.trace);
            double common = static_cast<double>(alignment.commonLen());
            if (common < similarity *
                             static_cast<double>(candidate.trace.size()))
                continue;
            if (common <
                similarity * static_cast<double>(other.trace.size()))
                continue;
            if (best_partner == order.size() ||
                alignment.commonLen() > best_alignment.commonLen()) {
                best_partner = bi;
                best_alignment = alignment;
            }
        }
        if (best_partner == order.size())
            continue;

        ThreadPlan &base = plans[order[best_partner]];
        auto fold = [&](std::size_t oj, std::size_t bj) {
            // Fold only when the destination widths agree (identical
            // guard outcomes); a zero-width record has no sites and is
            // pruned for free.
            if (other.weight[oj] <= 0.0)
                return;
            if (other.trace[oj].destBits != base.trace[bj].destBits)
                return;
            base.weight[bj] += other.weight[oj];
            other.weight[oj] = 0.0;
            stats.prunedDynInstrs++;
            stats.prunedSites += other.trace[oj].destBits;
        };

        // Fold the prefix: other's dyn j maps onto base's dyn j, and
        // the suffix: other's (end-1-k) maps onto base's (end-1-k).
        for (std::size_t j = 0; j < best_alignment.prefixLen; ++j)
            fold(j, j);
        for (std::size_t k = 0; k < best_alignment.suffixLen; ++k)
            fold(other.trace.size() - 1 - k, base.trace.size() - 1 - k);
    }

    stats.applicable = stats.prunedDynInstrs > 0;
    return stats;
}

} // namespace fsp::pruning
