/**
 * @file
 * Implementation of CTA-wise and thread-wise grouping.
 */

#include "pruning/grouping.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace fsp::pruning {

std::uint64_t
ThreadwisePruning::representativeCount() const
{
    std::uint64_t count = 0;
    for (const auto &cg : ctaGroups)
        for (const auto &tg : cg.threadGroups)
            count += tg.representatives.size();
    return count;
}

std::uint64_t
ThreadwisePruning::sitesAfterPruning() const
{
    std::uint64_t sites = 0;
    for (const auto &cg : ctaGroups)
        for (const auto &tg : cg.threadGroups)
            sites += tg.representativeBits;
    return sites;
}

std::vector<const ThreadGroup *>
ThreadwisePruning::allGroups() const
{
    std::vector<const ThreadGroup *> groups;
    for (const auto &cg : ctaGroups)
        for (const auto &tg : cg.threadGroups)
            groups.push_back(&tg);
    return groups;
}

ThreadwisePruning
pruneThreads(const faults::FaultSpace &space, std::uint64_t block_threads,
             Prng &prng, unsigned reps_per_group)
{
    FSP_ASSERT(reps_per_group >= 1, "need at least one representative");
    const auto &profiles = space.profiles();
    FSP_ASSERT(block_threads > 0, "empty CTA");
    FSP_ASSERT(profiles.size() % block_threads == 0,
               "thread count not a multiple of CTA size");
    const std::uint64_t num_ctas = profiles.size() / block_threads;

    ThreadwisePruning result;
    result.blockThreads = block_threads;

    // --- CTA-wise grouping: key = total iCnt of the CTA's threads.
    // (Equal totals with equal thread counts means equal averages, the
    // paper's classifier, without floating-point key fragility.)
    std::map<std::uint64_t, std::vector<std::uint64_t>> cta_by_total;
    std::vector<std::uint64_t> cta_total(num_ctas, 0);
    for (std::uint64_t cta = 0; cta < num_ctas; ++cta) {
        std::uint64_t total = 0;
        for (std::uint64_t t = 0; t < block_threads; ++t)
            total += profiles[cta * block_threads + t].iCnt;
        cta_total[cta] = total;
        cta_by_total[total].push_back(cta);
    }

    Prng cta_prng = prng.fork("cta-representatives");
    Prng thread_prng = prng.fork("thread-representatives");

    for (const auto &[total, ctas] : cta_by_total) {
        CtaGroup group;
        group.totalICnt = total;
        group.avgICnt = static_cast<double>(total) /
                        static_cast<double>(block_threads);
        group.ctas = ctas;
        group.representativeCta =
            ctas[cta_prng.below(ctas.size())];

        // --- Thread-wise grouping within the CTA group: key = exact
        // iCnt, members collected across every CTA of the group so the
        // extrapolation weights cover the whole group.
        std::map<std::uint64_t, ThreadGroup> by_icnt;
        for (std::uint64_t cta : ctas) {
            for (std::uint64_t t = 0; t < block_threads; ++t) {
                std::uint64_t tid = cta * block_threads + t;
                ThreadGroup &tg = by_icnt[profiles[tid].iCnt];
                tg.iCnt = profiles[tid].iCnt;
                tg.threads.push_back(tid);
                tg.groupFaultBits += profiles[tid].faultBits;
            }
        }

        // Representatives: random members inside the representative
        // CTA when the group has enough there, otherwise drawn from
        // the whole group.
        for (auto &[icnt, tg] : by_icnt) {
            std::vector<std::uint64_t> in_rep_cta;
            for (std::uint64_t tid : tg.threads) {
                if (tid / block_threads == group.representativeCta)
                    in_rep_cta.push_back(tid);
            }
            const auto &pool = in_rep_cta.size() >= reps_per_group
                                   ? in_rep_cta
                                   : tg.threads;
            auto picks = thread_prng.sampleWithoutReplacement(
                pool.size(), reps_per_group);
            for (std::size_t pick : picks)
                tg.representatives.push_back(pool[pick]);
            tg.representative = tg.representatives.front();
            tg.representativeBits =
                profiles[tg.representative].faultBits;
            group.threadGroups.push_back(std::move(tg));
        }

        result.ctaGroups.push_back(std::move(group));
    }

    return result;
}

} // namespace fsp::pruning
