/**
 * @file
 * Bit-wise pruning (paper section III-E).
 *
 * Not every destination-register bit needs an injection: the outcome
 * distribution as a function of bit position is smooth enough that a
 * set of equally spaced sample positions (the paper settles on 16 of
 * 32) reproduces it.  Predicate (condition-code) registers are special:
 * of their four flags only the zero flag feeds branch decisions in the
 * studied applications, so the other three can be pruned outright and
 * accounted as masked.
 */

#ifndef FSP_PRUNING_BITS_HH
#define FSP_PRUNING_BITS_HH

#include <cstdint>
#include <vector>

#include "faults/fault_site.hh"
#include "pruning/thread_plan.hh"

namespace fsp::pruning {

/**
 * Equally spaced sampled bit positions for a @p width -bit register
 * and a budget of @p samples positions (paper example: 2 per 8-bit
 * section of a 32-bit register selects {3,7,11,15,19,23,27,31}).
 * When samples is 0 or >= width every position is returned.
 */
std::vector<std::uint32_t> sampledBitPositions(unsigned width,
                                               unsigned samples);

/** Result of the bit-wise expansion: the final weighted site list. */
struct BitPruningResult
{
    std::vector<faults::WeightedSite> sites;

    /**
     * Weight pruned as known-masked without injection (the three
     * non-zero-flag predicate bits when predZeroFlagOnly is set).
     */
    double assumedMaskedWeight = 0.0;
};

/**
 * Expand surviving plan instructions into weighted bit-level fault
 * sites.
 *
 * @param plans plans after the earlier stages.
 * @param bit_samples sampled positions per register (0 = all bits).
 * @param pred_zero_flag_only prune the 3 non-zero-flag predicate bits
 *        as masked (4-bit destinations).
 */
BitPruningResult applyBitPruning(const std::vector<ThreadPlan> &plans,
                                 unsigned bit_samples,
                                 bool pred_zero_flag_only);

} // namespace fsp::pruning

#endif // FSP_PRUNING_BITS_HH
