/**
 * @file
 * Loop detection and iteration sampling.
 */

#include "pruning/loops.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace fsp::pruning {

std::vector<LoopInfo>
detectLoops(const std::vector<sim::DynRecord> &trace,
            const sim::Program &program)
{
    // Pass 1: find taken backward branches (back-edges).
    // A bra at dyn j was taken iff the next record's static index is
    // the branch target; it is a back-edge iff the target precedes it.
    std::map<std::uint32_t, std::uint32_t> backedges; // bra -> header
    for (std::size_t j = 0; j + 1 < trace.size(); ++j) {
        const sim::Instruction &insn = program.at(trace[j].staticIndex);
        if (insn.op != sim::Opcode::Bra)
            continue;
        auto target = static_cast<std::uint32_t>(insn.target);
        if (target > trace[j].staticIndex)
            continue;
        if (trace[j + 1].staticIndex != target)
            continue;
        backedges[trace[j].staticIndex] = target;
    }

    std::vector<LoopInfo> loops;
    for (const auto &[bra, header] : backedges) {
        LoopInfo loop;
        loop.headerStatic = header;
        loop.branchStatic = bra;

        // Iteration starts: every dynamic occurrence of the header.
        std::vector<std::uint64_t> starts;
        for (std::size_t j = 0; j < trace.size(); ++j) {
            if (trace[j].staticIndex == header)
                starts.push_back(j);
        }

        // Iteration k runs from its start until control leaves the
        // loop's static span [header, bra] or the next start begins.
        for (std::size_t k = 0; k < starts.size(); ++k) {
            std::uint64_t begin = starts[k];
            std::uint64_t hard_end =
                k + 1 < starts.size() ? starts[k + 1] : trace.size();
            std::uint64_t end = begin + 1;
            while (end < hard_end && trace[end].staticIndex >= header &&
                   trace[end].staticIndex <= bra) {
                ++end;
            }
            loop.iterations.emplace_back(begin, end);
        }
        loops.push_back(std::move(loop));
    }

    // Outermost-first: larger static spans sort earlier.
    std::sort(loops.begin(), loops.end(),
              [](const LoopInfo &a, const LoopInfo &b) {
                  std::uint32_t sa = a.branchStatic - a.headerStatic;
                  std::uint32_t sb = b.branchStatic - b.headerStatic;
                  if (sa != sb)
                      return sa > sb;
                  return a.headerStatic < b.headerStatic;
              });
    return loops;
}

LoopStats
analyzeLoops(const std::vector<sim::DynRecord> &trace,
             const sim::Program &program)
{
    LoopStats stats;
    stats.totalDynInstrs = trace.size();

    auto loops = detectLoops(trace, program);
    for (const auto &loop : loops)
        stats.loopIterations += loop.iterations.size();

    // Instructions "in loops" count each dynamic instruction once, via
    // the outermost loops only (inner spans nest inside them).
    for (std::size_t i = 0; i < loops.size(); ++i) {
        bool outermost = true;
        for (std::size_t k = 0; k < loops.size(); ++k) {
            if (k != i && loops[i].nestedIn(loops[k]))
                outermost = false;
        }
        if (outermost)
            stats.dynInstrsInLoops += loops[i].dynInstrs();
    }
    return stats;
}

LoopPruningStats
applyLoopPruning(ThreadPlan &plan, const sim::Program &program,
                 unsigned num_iter, Prng &prng)
{
    LoopPruningStats stats;
    if (num_iter == 0)
        return stats;

    auto loops = detectLoops(plan.trace, program);

    for (const auto &loop : loops) {
        // Iterations still alive after earlier stages / outer loops.
        std::vector<std::size_t> alive;
        for (std::size_t k = 0; k < loop.iterations.size(); ++k) {
            const auto &[begin, end] = loop.iterations[k];
            for (std::uint64_t j = begin; j < end; ++j) {
                if (plan.weight[j] > 0.0) {
                    alive.push_back(k);
                    break;
                }
            }
        }
        stats.iterationsTotal += loop.iterations.size();

        if (alive.size() <= num_iter) {
            stats.iterationsKept += alive.size();
            continue;
        }
        stats.loopsSampled++;
        stats.iterationsKept += num_iter;

        // Stratified selection: the first and last live iterations are
        // always kept at their own weight (loop boundary iterations are
        // systematically different -- values written in the final
        // iteration are often dead, making it far more masked than the
        // steady-state body); the remaining budget samples the middle
        // stratum uniformly.
        std::vector<bool> keep(alive.size(), false);
        std::vector<bool> certain(alive.size(), false);
        std::size_t middle_budget = num_iter;
        if (num_iter >= 3 && alive.size() >= 3) {
            keep.front() = certain.front() = true;
            keep.back() = certain.back() = true;
            middle_budget = num_iter - 2;
            auto chosen = prng.sampleWithoutReplacement(alive.size() - 2,
                                                        middle_budget);
            for (std::size_t c : chosen)
                keep[c + 1] = true;
        } else {
            auto chosen =
                prng.sampleWithoutReplacement(alive.size(), num_iter);
            for (std::size_t c : chosen)
                keep[c] = true;
        }

        // Rescale the sampled stratum by represented weight, not by
        // iteration count: when iterations carry unequal numbers of
        // live sites (triangular loop nests, guard-divergent bodies),
        // a count-based factor would not conserve the total
        // represented weight for the actual draw.  The weight-based
        // factor conserves it exactly.
        auto span_weight = [&](std::size_t a) {
            const auto &[begin, end] = loop.iterations[alive[a]];
            double w = 0.0;
            for (std::uint64_t j = begin; j < end; ++j) {
                if (plan.weight[j] > 0.0)
                    w += plan.weight[j] * plan.trace[j].destBits;
            }
            return w;
        };
        double sampled_weight = 0.0, kept_weight = 0.0;
        for (std::size_t a = 0; a < alive.size(); ++a) {
            if (certain[a])
                continue;
            double w = span_weight(a);
            sampled_weight += w;
            if (keep[a])
                kept_weight += w;
        }
        if (kept_weight <= 0.0 && sampled_weight > 0.0) {
            // Degenerate draw (only zero-site iterations kept): skip
            // pruning this loop rather than lose its weight.
            stats.loopsSampled--;
            stats.iterationsKept += alive.size() - num_iter;
            continue;
        }
        double factor =
            sampled_weight > 0.0 ? sampled_weight / kept_weight : 1.0;

        for (std::size_t a = 0; a < alive.size(); ++a) {
            const auto &[begin, end] = loop.iterations[alive[a]];
            for (std::uint64_t j = begin; j < end; ++j) {
                if (plan.weight[j] <= 0.0)
                    continue;
                if (!keep[a]) {
                    stats.prunedSites += plan.trace[j].destBits;
                    plan.weight[j] = 0.0;
                } else if (!certain[a]) {
                    plan.weight[j] *= factor;
                }
            }
        }
    }
    return stats;
}

} // namespace fsp::pruning
