/**
 * @file
 * Progressive pruning pipeline implementation.
 */

#include "pruning/pipeline.hh"

#include "faults/slicing.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace fsp::pruning {

std::vector<ThreadPlan>
buildThreadPlans(const sim::Executor &executor,
                 const sim::GlobalMemory &image,
                 const ThreadwisePruning &grouping,
                 const faults::SlicingPlan *slicing,
                 std::uint64_t *profiledCtas)
{
    sim::TraceOptions opts;
    std::vector<const ThreadGroup *> groups = grouping.allGroups();
    for (const ThreadGroup *group : groups)
        for (std::uint64_t rep : group->representatives)
            opts.traceThreads.insert(rep);

    // Under CTA independence a fault-free run of just the CTAs holding
    // the traced representatives produces bit-identical traces; skip
    // the rest of the grid.  No hazard sets are needed: without a
    // fault, accesses follow the golden footprints by definition.
    sim::CtaSlice slice;
    const sim::CtaSlice *slice_ptr = nullptr;
    if (slicing && slicing->independent()) {
        const std::uint64_t block_threads =
            executor.config().block.count();
        std::vector<std::uint64_t> ctas;
        ctas.reserve(opts.traceThreads.size());
        for (std::uint64_t rep : opts.traceThreads)
            ctas.push_back(rep / block_threads);
        slice.range = sim::CtaRange::of(std::move(ctas));
        slice_ptr = &slice;
    }

    sim::GlobalMemory scratch = image;
    sim::RunResult result =
        executor.run(scratch, &opts, nullptr, slice_ptr);
    if (profiledCtas)
        *profiledCtas = result.executedCtas;
    if (result.status != sim::RunStatus::Completed)
        fatal("traced profiling run failed: ", result.diagnostic);

    std::vector<ThreadPlan> plans;
    plans.reserve(groups.size());
    std::uint32_t group_id = 0;
    for (const ThreadGroup *group : groups) {
        // The group's fault bits are split evenly across its pilots:
        // each pilot plan carries weight such that the sum over pilots
        // of (weight * pilot bits) equals the group's total bits.
        const auto &reps = group->representatives;
        for (std::uint64_t rep : reps) {
            ThreadPlan plan;
            plan.thread = rep;
            plan.groupId = group_id;
            plan.trace = std::move(result.trace.dynTraces.at(rep));
            std::uint64_t rep_bits = 0;
            for (const auto &record : plan.trace)
                rep_bits += record.destBits;
            plan.baseWeight =
                rep_bits > 0
                    ? static_cast<double>(group->groupFaultBits) /
                          (static_cast<double>(reps.size()) *
                           static_cast<double>(rep_bits))
                    : 0.0;
            plan.weight.assign(plan.trace.size(), plan.baseWeight);
            plans.push_back(std::move(plan));
        }
        group_id++;
    }
    return plans;
}

namespace {

/**
 * Per-stage instrumentation: wall-time and surviving-site gauges,
 * registered idempotently so pipeline, observers and tools share one
 * registry without duplicating families.  All members stay invalid
 * when no registry is attached, and ScopedPhaseTimer / the setters
 * are null-safe, so the unobserved pipeline pays nothing.
 */
struct StageMetrics
{
    explicit StageMetrics(metrics::Registry *registry)
        : registry_(registry)
    {
        if (!registry_)
            return;
        static const char *const kStages[5] = {
            "thread", "profiling", "instruction", "loop", "bit"};
        for (std::size_t s = 0; s < 5; ++s) {
            seconds[s] = registry_->gauge(
                "fsp_pruning_stage_seconds",
                "cumulative wall time per pruning stage",
                std::string("stage=\"") + kStages[s] + "\"");
        }
        static const char *const kCounts[5] = {
            "exhaustive", "thread", "instruction", "loop", "bit"};
        for (std::size_t s = 0; s < 5; ++s) {
            sites[s] = registry_->gauge(
                "fsp_pruning_stage_sites",
                "fault sites surviving each pruning stage",
                std::string("stage=\"") + kCounts[s] + "\"");
        }
    }

    metrics::ScopedPhaseTimer
    timeStage(std::size_t stage) const
    {
        return metrics::ScopedPhaseTimer(registry_, seconds[stage]);
    }

    void
    setSites(std::size_t stage, std::uint64_t count) const
    {
        if (registry_)
            registry_->set(sites[stage], static_cast<double>(count));
    }

    metrics::Registry *registry_;
    metrics::GaugeId seconds[5];
    metrics::GaugeId sites[5];
};

} // namespace

PruningResult
prunePipeline(const sim::Executor &executor, const sim::GlobalMemory &image,
              const faults::FaultSpace &space, const PruningConfig &config,
              const faults::SlicingPlan *slicing,
              metrics::Registry *metrics)
{
    Prng prng(config.seed);
    StageMetrics stage_metrics(metrics);

    PruningResult result;
    result.counts.exhaustive = space.totalSites();
    stage_metrics.setSites(0, result.counts.exhaustive);

    // Stage 1: thread-wise pruning.
    Prng grouping_prng = prng.fork("grouping");
    {
        auto timer = stage_metrics.timeStage(0);
        result.grouping =
            pruneThreads(space, executor.config().block.count(),
                         grouping_prng, config.thread.repsPerGroup);
    }
    const faults::SlicingPlan *profiling_slicing =
        config.execution.slicedProfiling ? slicing : nullptr;
    result.slicedProfiling =
        profiling_slicing && profiling_slicing->independent();
    {
        auto timer = stage_metrics.timeStage(1);
        result.plans = buildThreadPlans(executor, image, result.grouping,
                                        profiling_slicing,
                                        &result.profiledCtas);
    }
    result.counts.afterThread = 0;
    for (const auto &plan : result.plans)
        result.counts.afterThread += plan.liveSites();
    stage_metrics.setSites(1, result.counts.afterThread);

    // Stage 2: instruction-wise pruning.
    if (config.instruction.enabled) {
        auto timer = stage_metrics.timeStage(2);
        result.instrStats = applyInstructionPruning(result.plans);
    }
    std::uint64_t live = 0;
    for (const auto &plan : result.plans)
        live += plan.liveSites();
    result.counts.afterInstruction = live;
    stage_metrics.setSites(2, live);

    // Stage 3: loop-wise pruning.  Plans are independent (each forks
    // its PRNG from its own thread id), so the stage fans out over a
    // pool when configured; per-plan stats are folded in plan order so
    // the result never depends on worker count.
    if (config.loop.iterations > 0) {
        auto timer = stage_metrics.timeStage(3);
        Prng loop_prng = prng.fork("loops");
        auto prune_plan = [&](ThreadPlan &plan) {
            Prng thread_prng =
                loop_prng.fork("thread-" + std::to_string(plan.thread));
            return applyLoopPruning(plan, executor.program(),
                                    config.loop.iterations, thread_prng);
        };

        std::vector<LoopPruningStats> per_plan(result.plans.size());
        if (config.execution.workers == 1 || result.plans.size() <= 1) {
            for (std::size_t i = 0; i < result.plans.size(); ++i)
                per_plan[i] = prune_plan(result.plans[i]);
        } else {
            ThreadPool pool(config.execution.workers);
            pool.parallelFor(result.plans.size(),
                             [&](std::size_t i, unsigned) {
                                 per_plan[i] =
                                     prune_plan(result.plans[i]);
                             });
        }
        for (const LoopPruningStats &stats : per_plan) {
            result.loopStats.loopsSampled += stats.loopsSampled;
            result.loopStats.iterationsTotal += stats.iterationsTotal;
            result.loopStats.iterationsKept += stats.iterationsKept;
            result.loopStats.prunedSites += stats.prunedSites;
        }
    }
    live = 0;
    for (const auto &plan : result.plans)
        live += plan.liveSites();
    result.counts.afterLoop = live;
    stage_metrics.setSites(3, live);

    // Stage 4: bit-wise pruning.
    {
        auto timer = stage_metrics.timeStage(4);
        BitPruningResult bits = applyBitPruning(
            result.plans, config.bit.samples,
            config.bit.predZeroFlagOnly);
        result.sites = std::move(bits.sites);
        result.assumedMaskedWeight = bits.assumedMaskedWeight;
    }
    result.counts.afterBit = result.sites.size();
    stage_metrics.setSites(4, result.counts.afterBit);

    return result;
}

} // namespace fsp::pruning
