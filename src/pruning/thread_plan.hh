/**
 * @file
 * The per-representative-thread injection plan threaded through the
 * progressive pruning stages.
 *
 * A plan starts (after thread-wise pruning) with every dynamic
 * instruction carrying the thread group's extrapolation weight; each
 * later stage either zeroes instructions (pruned) or rescales weights
 * (sampled), so the total represented fault-site weight is preserved.
 */

#ifndef FSP_PRUNING_THREAD_PLAN_HH
#define FSP_PRUNING_THREAD_PLAN_HH

#include <cstdint>
#include <vector>

#include "sim/trace.hh"

namespace fsp::pruning {

/** Injection plan for one representative thread. */
struct ThreadPlan
{
    std::uint64_t thread = 0;  ///< global linear thread id
    std::uint32_t groupId = 0; ///< owning thread group (never fold
                               ///< plans of the same group together)
    double baseWeight = 1.0;   ///< thread-group extrapolation weight
    std::vector<sim::DynRecord> trace; ///< golden dynamic trace
    std::vector<double> weight;        ///< per dyn instr; 0 = pruned

    /** Remaining (unpruned) fault sites in this plan. */
    std::uint64_t
    liveSites() const
    {
        std::uint64_t sites = 0;
        for (std::size_t j = 0; j < trace.size(); ++j) {
            if (weight[j] > 0.0)
                sites += trace[j].destBits;
        }
        return sites;
    }

    /** Total represented weight (sum of weight * destBits). */
    double
    representedWeight() const
    {
        double w = 0.0;
        for (std::size_t j = 0; j < trace.size(); ++j)
            w += weight[j] * trace[j].destBits;
        return w;
    }
};

} // namespace fsp::pruning

#endif // FSP_PRUNING_THREAD_PLAN_HH
