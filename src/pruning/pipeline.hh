/**
 * @file
 * The progressive four-stage pruning pipeline (paper section III):
 * thread-wise -> instruction-wise -> loop-wise -> bit-wise, each stage
 * further reducing the fault-site list produced by the previous one
 * while carrying extrapolation weights so the final weighted campaign
 * estimates the full-space error resilience profile.
 */

#ifndef FSP_PRUNING_PIPELINE_HH
#define FSP_PRUNING_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "faults/fault_space.hh"
#include "pruning/bits.hh"
#include "pruning/grouping.hh"
#include "pruning/instr_common.hh"
#include "pruning/loops.hh"
#include "pruning/thread_plan.hh"
#include "sim/executor.hh"
#include "util/metrics.hh"

namespace fsp::faults {
class SlicingPlan;
} // namespace fsp::faults

namespace fsp::pruning {

/**
 * Pipeline configuration, grouped by stage so future stages extend
 * their own sub-struct instead of widening one flat bag of knobs.
 */
struct PruningConfig
{
    std::uint64_t seed = 1;

    /** Thread-wise grouping stage (paper section III-A). */
    struct ThreadStage
    {
        /**
         * Representatives ("pilots") injected per thread group.  The
         * paper uses 1; raising this reduces the variance introduced
         * by standing one thread in for a whole group, at proportional
         * injection cost (see bench_ablation_reps).
         */
        unsigned repsPerGroup = 1;
    };

    /** Instruction-wise common-block stage (section III-B). */
    struct InstructionStage
    {
        /** Enable instruction-wise common-block pruning. */
        bool enabled = true;
    };

    /** Loop-wise iteration-sampling stage (section III-C). */
    struct LoopStage
    {
        /** Sampled iterations per loop; 0 disables the stage. */
        unsigned iterations = 8;
    };

    /** Bit-wise sampling stage (section III-D). */
    struct BitStage
    {
        /** Sampled bit positions per register; 0 keeps every bit. */
        unsigned samples = 16;

        /** Prune non-zero-flag predicate bits as masked. */
        bool predZeroFlagOnly = true;
    };

    /** How the pipeline (and the campaigns after it) execute. */
    struct ExecutionStage
    {
        /**
         * Worker threads for the per-plan loop-pruning stage; 1 keeps
         * the stage serial, 0 selects the hardware default.  Results
         * are identical at any setting: each plan's sampling PRNG is
         * forked from its thread id, and stage statistics are folded
         * in plan order.
         */
        unsigned workers = 1;

        /**
         * When a SlicingPlan proving CTA independence is supplied to
         * prunePipeline, restrict the traced profiling run to the CTAs
         * that contain representative threads.  Traces are
         * bit-identical either way (independent CTAs execute the same
         * in isolation); this only skips simulating CTAs nobody looks
         * at.
         */
        bool slicedProfiling = true;

        /**
         * Permit checkpointed temporal replay in the campaigns run
         * over the pruned space (forwarded by the analysis facade to
         * the injector/campaign engines; the pipeline stages
         * themselves do not inject).  The A/B switch behind
         * `--no-checkpoints`.
         */
        bool checkpoints = true;
    };

    ThreadStage thread;
    InstructionStage instruction;
    LoopStage loop;
    BitStage bit;
    ExecutionStage execution;
};

/** Fault-site counts after each progressive stage (Fig. 10 series). */
struct StageCounts
{
    std::uint64_t exhaustive = 0;
    std::uint64_t afterThread = 0;
    std::uint64_t afterInstruction = 0;
    std::uint64_t afterLoop = 0;
    std::uint64_t afterBit = 0;
};

/** Complete result of the pruning pipeline. */
struct PruningResult
{
    ThreadwisePruning grouping;
    std::vector<ThreadPlan> plans;          ///< final per-rep weights
    std::vector<faults::WeightedSite> sites; ///< final injection list
    double assumedMaskedWeight = 0.0;
    StageCounts counts;
    InstrPruningStats instrStats;
    LoopPruningStats loopStats;
    bool slicedProfiling = false;    ///< profiling run was CTA-sliced
    std::uint64_t profiledCtas = 0;  ///< CTAs executed by the traced run

    /**
     * Total weight represented by the pruned space (site weights plus
     * assumed-masked weight); equals the exhaustive site count when no
     * sampling stage dropped weight, and matches it in expectation
     * otherwise.
     */
    double
    totalRepresentedWeight() const
    {
        double w = assumedMaskedWeight;
        for (const auto &s : sites)
            w += s.weight;
        return w;
    }
};

/**
 * Run the full pipeline against an enumerated fault space.
 *
 * @param executor the configured kernel launch.
 * @param image pristine global memory (for the traced profiling run).
 * @param space enumerated fault space of the launch.
 * @param config stage parameters.
 * @param slicing optional CTA-independence proof; when it declares the
 *        kernel independent and config.execution.slicedProfiling is set, the
 *        traced profiling run executes only the representatives' CTAs.
 * @param metrics optional registry receiving per-stage wall time
 *        (fsp_pruning_stage_seconds) and surviving-site-count
 *        (fsp_pruning_stage_sites) gauges; never affects results.
 */
PruningResult prunePipeline(const sim::Executor &executor,
                            const sim::GlobalMemory &image,
                            const faults::FaultSpace &space,
                            const PruningConfig &config,
                            const faults::SlicingPlan *slicing = nullptr,
                            metrics::Registry *metrics = nullptr);

/**
 * Build (unpruned) thread plans for the representatives chosen by
 * thread-wise grouping: one traced run, weights initialised to each
 * group's extrapolation weight.  Exposed separately so experiments can
 * drive individual stages (Figs. 5-8).
 *
 * @param slicing optional independence proof enabling a CTA-sliced
 *        traced run (see PruningConfig::ExecutionStage::slicedProfiling).
 * @param profiledCtas when non-null, receives the number of CTAs the
 *        traced run executed.
 */
std::vector<ThreadPlan>
buildThreadPlans(const sim::Executor &executor,
                 const sim::GlobalMemory &image,
                 const ThreadwisePruning &grouping,
                 const faults::SlicingPlan *slicing = nullptr,
                 std::uint64_t *profiledCtas = nullptr);

} // namespace fsp::pruning

#endif // FSP_PRUNING_PIPELINE_HH
