/**
 * @file
 * Thread-wise pruning (paper section III-B): the first and most
 * effective pruning stage.
 *
 * CTAs are grouped by their per-thread dynamic-instruction-count (iCnt)
 * composition -- the paper shows the average thread iCnt per CTA tracks
 * the CTA's error-resilience boxplot (Figs. 2-3) -- and one
 * representative CTA is chosen per group.  Threads are then grouped by
 * exact iCnt across each CTA group, and one representative thread is
 * injected per group.  The grouping is hierarchical because threads
 * with equal iCnt in different CTA groups may execute different code
 * (observed in HotSpot and Gaussian K2; paper section III-B2).
 */

#ifndef FSP_PRUNING_GROUPING_HH
#define FSP_PRUNING_GROUPING_HH

#include <cstdint>
#include <vector>

#include "faults/fault_space.hh"
#include "util/prng.hh"

namespace fsp::pruning {

/** A group of threads with identical iCnt within one CTA group. */
struct ThreadGroup
{
    std::uint64_t iCnt = 0;                ///< exact iCnt key
    std::vector<std::uint64_t> threads;    ///< member global thread ids
    std::uint64_t representative = 0;      ///< primary chosen member
    std::vector<std::uint64_t> representatives; ///< all chosen members
    std::uint64_t groupFaultBits = 0;      ///< Eq. 1 bits of all members
    std::uint64_t representativeBits = 0;  ///< Eq. 1 bits of the rep

    /** Extrapolation weight carried by each primary-rep site. */
    double
    weight() const
    {
        return representativeBits > 0
                   ? static_cast<double>(groupFaultBits) /
                         static_cast<double>(representativeBits)
                   : 0.0;
    }
};

/** A group of CTAs with identical total thread iCnt. */
struct CtaGroup
{
    std::uint64_t totalICnt = 0;        ///< per-CTA iCnt sum (group key)
    double avgICnt = 0.0;               ///< average thread iCnt
    std::vector<std::uint64_t> ctas;    ///< member CTA linear ids
    std::uint64_t representativeCta = 0;
    std::vector<ThreadGroup> threadGroups;
};

/** Result of the thread-wise pruning stage. */
struct ThreadwisePruning
{
    std::vector<CtaGroup> ctaGroups;
    std::uint64_t blockThreads = 0; ///< threads per CTA

    /** Total representative threads across all groups. */
    std::uint64_t representativeCount() const;

    /** Fault sites remaining after thread-wise pruning. */
    std::uint64_t sitesAfterPruning() const;

    /** Flat view of every thread group. */
    std::vector<const ThreadGroup *> allGroups() const;
};

/**
 * Perform CTA-wise and thread-wise grouping from fault-space profiles.
 *
 * @param space enumerated fault space (profiles for every thread).
 * @param block_threads threads per CTA.
 * @param prng source of randomness for representative selection.
 * @param reps_per_group representatives ("pilots") chosen per thread
 *        group.  The paper uses 1; more pilots trade injections for
 *        lower single-thread sampling variance (Relyzer-style).
 */
ThreadwisePruning pruneThreads(const faults::FaultSpace &space,
                               std::uint64_t block_threads, Prng &prng,
                               unsigned reps_per_group = 1);

} // namespace fsp::pruning

#endif // FSP_PRUNING_GROUPING_HH
