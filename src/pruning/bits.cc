/**
 * @file
 * Bit-position sampling implementation.
 */

#include "pruning/bits.hh"

#include "util/logging.hh"

namespace fsp::pruning {

std::vector<std::uint32_t>
sampledBitPositions(unsigned width, unsigned samples)
{
    FSP_ASSERT(width > 0, "zero-width register");
    std::vector<std::uint32_t> positions;
    if (samples == 0 || samples >= width) {
        positions.reserve(width);
        for (unsigned b = 0; b < width; ++b)
            positions.push_back(b);
        return positions;
    }

    // Equal strides, one position at the top of each stride, so the
    // most significant bit is always sampled (the paper's selection
    // pattern {3,7,...,31} for 8 of 32).
    unsigned stride = width / samples;
    if (stride * samples < width)
        stride++;
    for (unsigned b = stride - 1; b < width; b += stride)
        positions.push_back(b);
    // Rounding with non-dividing widths can drop the last stride; make
    // sure the MSB is present.
    if (positions.empty() || positions.back() != width - 1)
        positions.push_back(width - 1);
    return positions;
}

BitPruningResult
applyBitPruning(const std::vector<ThreadPlan> &plans, unsigned bit_samples,
                bool pred_zero_flag_only)
{
    BitPruningResult result;

    for (const auto &plan : plans) {
        for (std::size_t j = 0; j < plan.trace.size(); ++j) {
            double w = plan.weight[j];
            unsigned bits = plan.trace[j].destBits;
            if (w <= 0.0 || bits == 0)
                continue;

            if (bits == 4 && pred_zero_flag_only) {
                // Predicate CC register: inject the zero flag, account
                // the sign/carry/overflow flags as masked (paper
                // section III-E: only the zero flag feeds branches).
                faults::WeightedSite site;
                site.site.thread = plan.thread;
                site.site.dynIndex = j;
                site.site.bit = 0;
                site.weight = w;
                result.sites.push_back(site);
                result.assumedMaskedWeight += 3.0 * w;
                continue;
            }

            auto positions = sampledBitPositions(bits, bit_samples);
            double factor = static_cast<double>(bits) /
                            static_cast<double>(positions.size());
            for (std::uint32_t b : positions) {
                faults::WeightedSite site;
                site.site.thread = plan.thread;
                site.site.dynIndex = j;
                site.site.bit = b;
                site.weight = w * factor;
                result.sites.push_back(site);
            }
        }
    }
    return result;
}

} // namespace fsp::pruning
