/**
 * @file
 * Loop-wise pruning (paper section III-D).
 *
 * Loop iterations dominate the dynamic instruction stream of most
 * kernels (65-99% per the paper's Table VII); because the studied loops
 * carry no cross-iteration error propagation, the outcome distribution
 * of a random subset of iterations matches that of the whole loop.
 * This module detects loops from the dynamic trace (taken back-edges),
 * reports per-kernel loop statistics, and prunes a plan down to a
 * sampled set of iterations with appropriate weight rescaling.
 */

#ifndef FSP_PRUNING_LOOPS_HH
#define FSP_PRUNING_LOOPS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "pruning/thread_plan.hh"
#include "sim/program.hh"
#include "util/prng.hh"

namespace fsp::pruning {

/** One detected (natural) loop of one thread's dynamic trace. */
struct LoopInfo
{
    std::uint32_t headerStatic = 0; ///< static index of the loop header
    std::uint32_t branchStatic = 0; ///< static index of the back-edge bra

    /** Half-open dynamic ranges [begin, end), one per iteration. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> iterations;

    /** Dynamic instructions across all iterations. */
    std::uint64_t
    dynInstrs() const
    {
        std::uint64_t n = 0;
        for (const auto &[b, e] : iterations)
            n += e - b;
        return n;
    }

    /** True when this loop's static span nests inside @p outer's. */
    bool
    nestedIn(const LoopInfo &outer) const
    {
        return outer.headerStatic <= headerStatic &&
               branchStatic <= outer.branchStatic &&
               !(outer.headerStatic == headerStatic &&
                 outer.branchStatic == branchStatic);
    }
};

/**
 * Detect loops in a dynamic trace via taken backward branches.
 * Returns loops sorted outermost-first (by static span containment).
 */
std::vector<LoopInfo> detectLoops(const std::vector<sim::DynRecord> &trace,
                                  const sim::Program &program);

/** Per-thread loop statistics (Table VII inputs). */
struct LoopStats
{
    std::uint64_t loopIterations = 0; ///< total iterations, all loops
    std::uint64_t dynInstrsInLoops = 0; ///< instrs inside outermost loops
    std::uint64_t totalDynInstrs = 0;

    double
    loopInstrFraction() const
    {
        return totalDynInstrs > 0
                   ? static_cast<double>(dynInstrsInLoops) /
                         static_cast<double>(totalDynInstrs)
                   : 0.0;
    }
};

/** Summarise the loop structure of one trace. */
LoopStats analyzeLoops(const std::vector<sim::DynRecord> &trace,
                       const sim::Program &program);

/** Outcome statistics of the loop-wise stage. */
struct LoopPruningStats
{
    std::uint64_t loopsSampled = 0;
    std::uint64_t iterationsTotal = 0;
    std::uint64_t iterationsKept = 0;
    std::uint64_t prunedSites = 0;
};

/**
 * Apply loop-wise pruning to one plan in place: for every detected
 * loop (processed outermost-first), keep @p num_iter randomly sampled
 * still-live iterations and rescale their weights by
 * (live iterations / kept iterations); prune the rest.
 *
 * @param plan the representative-thread plan.
 * @param program the kernel (for back-edge detection).
 * @param num_iter sampled iterations per loop (the paper uses 3-15).
 * @param prng randomness for iteration selection.
 */
LoopPruningStats applyLoopPruning(ThreadPlan &plan,
                                  const sim::Program &program,
                                  unsigned num_iter, Prng &prng);

} // namespace fsp::pruning

#endif // FSP_PRUNING_LOOPS_HH
