/**
 * @file
 * Instruction-wise pruning (paper section III-C).
 *
 * Representative threads, being SIMT siblings, usually share long
 * identical stretches of dynamic instructions (the paper's Fig. 5 shows
 * two PathFinder threads differing only in a 17-instruction middle
 * block).  Faults in a shared block have near-identical outcome
 * distributions across the sharing threads, so the block needs to be
 * injected only once: the base thread keeps its sites with the pruned
 * threads' weights folded in, and the pruned threads keep only their
 * distinctive middle sections.
 */

#ifndef FSP_PRUNING_INSTR_COMMON_HH
#define FSP_PRUNING_INSTR_COMMON_HH

#include <cstdint>
#include <vector>

#include "pruning/thread_plan.hh"

namespace fsp::pruning {

/** Alignment of one thread's trace against the base thread's trace. */
struct TraceAlignment
{
    std::size_t prefixLen = 0; ///< identical leading dyn instructions
    std::size_t suffixLen = 0; ///< identical trailing dyn instructions

    std::size_t
    commonLen() const
    {
        return prefixLen + suffixLen;
    }
};

/**
 * Compute the common prefix/suffix alignment between two dynamic
 * traces.  Records match when both the static instruction index and
 * the recorded destination width (guard outcome) are equal.  Prefix
 * and suffix never overlap.
 */
TraceAlignment alignTraces(const std::vector<sim::DynRecord> &base,
                           const std::vector<sim::DynRecord> &other);

/**
 * Common-block cut points of @p trace aligned against @p base, as
 * executed-record ordinals (the coordinate space of
 * sim::SectionSplitOptions::extraBoundaries): one cut at the end of
 * the common prefix, one at the start of the common suffix.  Aligning
 * section boundaries with common-block edges keeps a section from
 * straddling shared and distinctive code, which would couple its cache
 * validity to both.  @p trace must be value-recorded
 * (TraceOptions::recordValues) so executed ordinals are meaningful.
 */
std::vector<std::uint64_t>
alignmentBoundaries(const std::vector<sim::DynRecord> &base,
                    const std::vector<sim::DynRecord> &trace);

/** Outcome statistics of the instruction-wise stage. */
struct InstrPruningStats
{
    std::uint64_t prunedDynInstrs = 0;  ///< dyn instructions zeroed
    std::uint64_t prunedSites = 0;      ///< fault sites zeroed
    std::uint64_t candidateDynInstrs = 0; ///< instrs in non-base plans
    bool applicable = false;            ///< >= 2 plans with commonality

    double
    prunedFraction() const
    {
        return candidateDynInstrs > 0
                   ? static_cast<double>(prunedDynInstrs) /
                         static_cast<double>(candidateDynInstrs)
                   : 0.0;
    }
};

/**
 * Apply instruction-wise pruning in place.
 *
 * Plans are considered longest-first; each plan folds its common
 * prefix/suffix into the best-matching longer plan, but only when the
 * common block covers at least @p similarity of *both* traces.  This
 * is the paper's applicability rule: kernels whose representatives are
 * an early-exit thread plus a full thread (Gaussian K1/K2, K-Means K1)
 * share code only where their behaviour diverges, so folding them
 * would bias the estimate; threads that run essentially the same code
 * (PathFinder's 516/533 pair, duplicate thread groups across CTA
 * groups) fold safely.
 *
 * @param plans representative-thread plans (thread-wise weights set).
 * @param similarity minimum common fraction of both traces (default
 *        matches the paper's "large portion of common instructions").
 * @return stage statistics (Table VI inputs).
 */
InstrPruningStats applyInstructionPruning(std::vector<ThreadPlan> &plans,
                                          double similarity = 0.5);

} // namespace fsp::pruning

#endif // FSP_PRUNING_INSTR_COMMON_HH
