/**
 * @file
 * Shard planner: split one weighted campaign across N disjoint
 * journaled shards, deterministically.
 *
 * The single-process CampaignEngine is saturated, so a sharded
 * campaign runs each shard in its own worker process (see
 * src/service/) and re-folds the shard journals into one result with
 * journal_merge.hh.  The planner's contract is the whole scheme's
 * correctness argument:
 *
 *  - Assignment is a pure function of (site index, site count, shard
 *    count): shard s owns the contiguous global range
 *    [s*n/N, (s+1)*n/N).  Contiguity keeps the merge's serial fold a
 *    simple concatenation in global site order -- the same order the
 *    single-process engine folds in -- so the merged profile is
 *    bit-identical at ANY shard count, including N=1.
 *  - Each shard journal is a standard CampaignJournal over the shard's
 *    sub-list (record indices are shard-local) whose header hash is
 *    computed from a shard-suffixed JournalKey; a JournalShardExt
 *    block sealed after the header carries the PARENT campaign's
 *    identity hash plus the shard's index/count/offset, so merge can
 *    prove all siblings belong to the same campaign and cover it
 *    exactly.
 *  - planShards() never looks at weights or outcomes, so re-planning
 *    the same site list always yields the same shards -- a crashed
 *    worker's journal can be re-opened and resumed by a fresh process
 *    with nothing but (spec, shard index, shard count).
 */

#ifndef FSP_FAULTS_SHARD_PLAN_HH
#define FSP_FAULTS_SHARD_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "faults/campaign_journal.hh"
#include "faults/fault_site.hh"

namespace fsp::faults {

/** One shard of a sharded campaign. */
struct ShardPlanEntry
{
    /** Sealed into the shard journal's extension block. */
    ShardInfo info;

    /** Shard-suffixed campaign identity (tag + "#shard<i>/<N>"). */
    JournalKey key;

    /** Header hash of the shard journal (key + sub-list). */
    std::uint64_t headerHash = 0;

    /** The shard's sites, in global site order. */
    std::vector<WeightedSite> sites;

    bool empty() const { return sites.empty(); }
};

/** A full shard plan: N entries covering the campaign exactly once. */
struct ShardPlan
{
    /** Header hash of the FULL campaign (key + full site list). */
    std::uint64_t campaignHash = 0;

    /** The parent campaign's identity. */
    JournalKey campaignKey;

    std::uint64_t campaignSites = 0;

    std::vector<ShardPlanEntry> shards;
};

/** First global site index of shard @p s of @p count sites over @p n
 *  shards: s*count/n, computed without overflow.  shardBegin(n) ==
 *  count, so shard s owns [shardBegin(s), shardBegin(s+1)). */
std::uint64_t shardBegin(std::uint32_t shard, std::uint32_t shardCount,
                         std::uint64_t siteCount);

/** The shard-suffixed JournalKey of shard @p s of @p n. */
JournalKey shardJournalKey(const JournalKey &campaignKey,
                           std::uint32_t shard, std::uint32_t shardCount);

/** Conventional on-disk path of one shard journal:
 *  "<base>.shard<i>of<N>.fspj". */
std::string shardJournalPath(const std::string &base, std::uint32_t shard,
                             std::uint32_t shardCount);

/**
 * Split @p sites (the full campaign, in its canonical order) into
 * @p shardCount disjoint contiguous shards under campaign identity
 * @p key.  Every site appears in exactly one shard; empty shards are
 * legal (shardCount > sites.size()).  Throws std::invalid_argument on
 * shardCount == 0.
 */
ShardPlan planShards(const JournalKey &key,
                     const std::vector<WeightedSite> &sites,
                     std::uint32_t shardCount);

/**
 * Pre-create (or validate, when resuming) the on-disk journal of one
 * shard at @p path: a fresh file gets the standard header plus the
 * shard extension block sealed; an existing file is validated against
 * the entry's identity exactly as a resume would.  After this, a
 * worker process runs the shard as a plain journaled campaign with
 * CampaignOptions{journalPath=path, resume=true, journalKey=entry.key}
 * -- the engine needs no sharding knowledge at all.  Throws
 * JournalError when an existing file belongs to a different campaign
 * or shard geometry.
 */
void prepareShardJournal(const std::string &path,
                         const ShardPlanEntry &entry,
                         std::uint64_t modelHash);

} // namespace fsp::faults

#endif // FSP_FAULTS_SHARD_PLAN_HH
