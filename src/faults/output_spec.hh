/**
 * @file
 * Application output specification.  Each workload declares the global
 * memory regions that constitute its output, with an element type and a
 * comparison tolerance; the injector classifies a run as masked/SDC by
 * comparing those regions against the golden image.
 */

#ifndef FSP_FAULTS_OUTPUT_SPEC_HH
#define FSP_FAULTS_OUTPUT_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/memory.hh"

namespace fsp::faults {

/** Element interpretation for tolerance-aware comparison. */
enum class ElemType : std::uint8_t
{
    U32, ///< exact 32-bit integer compare
    F32, ///< float compare with tolerance
    F64, ///< double compare with tolerance
    Raw, ///< exact byte compare
};

/** One output region in global memory. */
struct OutputRegion
{
    std::string name;        ///< human-readable (diagnostics)
    std::uint64_t addr = 0;  ///< device address
    std::uint64_t bytes = 0; ///< region length
    ElemType type = ElemType::Raw;

    /**
     * Relative tolerance for float/double elements: values match when
     * |a-b| <= tolerance * max(1, |a|, |b|).  0 demands bit equality.
     */
    double tolerance = 0.0;

    /**
     * Row count for 2-D corruption-pattern analysis (faults::SdcAnatomy):
     * the region is a rows x (elements/rows) row-major matrix.  0 (the
     * default) treats the region as a single row.  Purely descriptive --
     * never affects classification into masked/SDC.
     */
    std::uint64_t rows = 0;
};

/** Element width in bytes for a region's type (1 for Raw). */
std::size_t elemSize(ElemType type);

/** One corrupted element found by diffRegion. */
struct ElementDiff
{
    std::uint64_t index = 0; ///< element index within the region

    /**
     * Relative error |a-b| / max(1, |a|, |b|) of the corrupted element
     * (computed in double for every element type); +infinity when the
     * corruption produced or destroyed a NaN/Inf.
     */
    double relError = 0.0;
};

/**
 * Per-element diff of one region, using exactly the match semantics of
 * outputsMatch(): an element appears here iff it would make the region
 * compare unequal.  The returned indices are strictly increasing.
 */
std::vector<ElementDiff>
diffRegion(const OutputRegion &region,
           const std::vector<std::uint8_t> &golden,
           const std::vector<std::uint8_t> &test);

/** Captured output bytes of all regions of one run. */
std::vector<std::vector<std::uint8_t>>
captureOutputs(const sim::GlobalMemory &memory,
               const std::vector<OutputRegion> &regions);

/**
 * Compare a run's outputs against the golden capture.
 *
 * @return true when every region matches within tolerance.
 */
bool outputsMatch(const std::vector<OutputRegion> &regions,
                  const std::vector<std::vector<std::uint8_t>> &golden,
                  const std::vector<std::vector<std::uint8_t>> &test);

} // namespace fsp::faults

#endif // FSP_FAULTS_OUTPUT_SPEC_HH
