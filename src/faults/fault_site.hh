/**
 * @file
 * Fault-site value types.  A fault site is the paper's (thread id,
 * dynamic instruction id, destination-register bit position) triple;
 * pruned spaces carry a weight per site so that outcome estimates stay
 * unbiased (each surviving site stands for the original sites it
 * represents).
 */

#ifndef FSP_FAULTS_FAULT_SITE_HH
#define FSP_FAULTS_FAULT_SITE_HH

#include <cstdint>

#include "sim/fault.hh"

namespace fsp::faults {

/** One injectable fault site. */
struct FaultSite
{
    std::uint64_t thread = 0;   ///< global linear thread id
    std::uint64_t dynIndex = 0; ///< dynamic instruction index in thread
    std::uint32_t bit = 0;      ///< destination bit position

    /**
     * Convert to the executor's fault plan under the paper's default
     * model: a transient single-bit destination-register flip.  Other
     * interpretations of the triple live in faults::FaultModel
     * implementations (fault_model.hh).
     */
    sim::FaultPlan
    toPlan() const
    {
        sim::FaultPlan plan;
        plan.thread = thread;
        plan.dynIndex = dynIndex;
        plan.mask = bit < 64 ? std::uint64_t{1} << bit : 0;
        return plan;
    }

    bool operator==(const FaultSite &other) const = default;
};

/** A fault site with the extrapolation weight it carries. */
struct WeightedSite
{
    FaultSite site;
    double weight = 1.0;

    bool operator==(const WeightedSite &other) const = default;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_FAULT_SITE_HH
