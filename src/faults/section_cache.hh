/**
 * @file
 * Content-addressed per-section campaign result cache (the FastFlip
 * idea adapted to this engine): when a kernel is edited and
 * re-campaigned, only fault sites in *changed* trace sections need
 * re-injection -- every other site's outcome is replayed from a cache
 * keyed purely by content hashes, never by file names or timestamps.
 *
 * Key derivation (see sim/section.hh for the per-section hashes):
 *
 *   bucket  = FNV(contextHash, section.contentHash,
 *                 section.prefixStateHash)          -- names the file
 *   site    = FNV(section.tailContentHash, thread,
 *                 writeOffsetInSection, bit)        -- SiteSectionKey
 *   entry   = FNV(site, faultModelHash, seed)       -- record key
 *
 * contextHash pins the launch geometry and the golden outputs (inputs
 * are reflected in the outputs, so a changed input image changes the
 * context).  tailContentHash covers the section *and everything after
 * it*, because an outcome is only reusable when the code the fault
 * propagates through is unchanged -- an edit therefore invalidates its
 * own section and every earlier one, conservatively.  prefixStateHash
 * pins the architectural values the section consumes without pinning
 * upstream content, so a value-preserving upstream edit (strength
 * reduction, guarded-off instrumentation) keeps downstream sections
 * warm.  Model hash and seed complete the key: a cache directory can
 * be shared freely across models, seeds, kernels and shard workers --
 * wrong-anything simply misses.
 *
 * Known soundness limits (documented, backstopped by the warm-vs-cold
 * bit-identity suite in tests/test_section_cache.cc): prefixStateHash
 * pins per-thread register dataflow plus the golden outputs, not
 * cross-thread shared-memory traffic, so an edit that changes another
 * thread's stores without changing this thread's trace or the golden
 * output is not distinguished.  The barrier-aligned section cuts make
 * such an edit also change the observing thread's trace in every case
 * the PTXPlus model can express today.
 *
 * Disk format: one append-only file per bucket
 * (`DIR/sec-<hex>.fspc`), fixed 56-byte self-checksummed records.
 * Appends are single O_APPEND write()s, so shard workers of the
 * sharded campaign service can share a directory without locking;
 * torn or corrupt records are skipped on load (a miss, never an
 * error), and duplicate keys are benign because outcomes are
 * deterministic functions of the key.
 */

#ifndef FSP_FAULTS_SECTION_CACHE_HH
#define FSP_FAULTS_SECTION_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "faults/fault_site.hh"
#include "faults/output_spec.hh"
#include "faults/sdc_anatomy.hh"
#include "sim/launch.hh"
#include "sim/section.hh"

namespace fsp::faults {

/**
 * Sentinel for SectionCacheRecord::staticIndex: the fault applied at
 * the site's own instruction (the overwhelmingly common case), whose
 * static index must be resolved against the *current* kernel on
 * replay -- an insertion elsewhere renumbers static indices without
 * invalidating the outcome.
 */
inline constexpr std::uint32_t kStaticFollowsSite =
    ~std::uint32_t{0} - 1;

/** One cached classification (the payload of a cache entry). */
struct SectionCacheRecord
{
    Outcome outcome = Outcome::Invalid;

    /**
     * InjectionDetail::staticIndex, with kStaticFollowsSite standing
     * in when it equals the site's own instruction (see above).
     */
    std::uint32_t staticIndex = sim::kNoStaticIndex;

    bool hasAnatomy = false;
    SdcAnatomyRecord anatomy;

    bool operator==(const SectionCacheRecord &other) const = default;
};

/** Cache coordinates of one fault site (from SectionIndex::keyFor). */
struct SiteSectionKey
{
    std::uint64_t sectionHash = 0; ///< bucket: context + content + prefix
    std::uint64_t siteHash = 0;    ///< tail + thread + offset + bit
    std::uint32_t staticIndex = 0; ///< site's instruction, current kernel
};

/** Fold the model hash and campaign seed into a final entry key. */
std::uint64_t sectionCacheKey(std::uint64_t siteHash,
                              std::uint64_t modelHash,
                              std::uint64_t seed);

/**
 * Context component of every bucket hash: launch geometry plus the
 * golden outputs and their declared geometry.  The initial memory
 * image is deliberately absent -- any input change that matters is
 * visible in the golden outputs or in the traces themselves.
 */
std::uint64_t
campaignContextHash(const sim::LaunchConfig &config,
                    const std::vector<OutputRegion> &outputs,
                    const std::vector<std::vector<std::uint8_t>> &golden);

/**
 * Maps fault sites of one campaign onto section-cache coordinates.
 * Built by the analysis facade (KernelAnalysis::buildSectionIndex)
 * from value-recorded traces of exactly the threads the site list
 * touches, then handed to the engine via
 * CampaignOptions::sectionIndex.  Sites on un-indexed threads or at
 * non-injectable records simply yield no key (a cache miss).
 */
class SectionIndex
{
  public:
    explicit SectionIndex(std::uint64_t contextHash = 0)
        : context_hash_(contextHash)
    {
    }

    std::uint64_t contextHash() const { return context_hash_; }

    /**
     * Index one thread's value-recorded dynamic trace, pre-split by
     * sim::splitTrace over the same trace.
     */
    void addThread(std::uint64_t thread,
                   const std::vector<sim::DynRecord> &trace,
                   sim::SectionedTrace sectioned);

    bool
    hasThread(std::uint64_t thread) const
    {
        return threads_.find(thread) != threads_.end();
    }

    std::size_t threadCount() const { return threads_.size(); }

    /** Sections indexed across all threads. */
    std::size_t sectionCount() const;

    /**
     * Cache coordinates of @p site, or nullopt when the site's thread
     * is not indexed or its record is not an executed destination
     * write (such sites always take the injection path).
     */
    std::optional<SiteSectionKey> keyFor(const FaultSite &site) const;

    /** The sections of one indexed thread (journal summaries). */
    const sim::SectionedTrace *
    threadSections(std::uint64_t thread) const
    {
        auto it = threads_.find(thread);
        return it != threads_.end() ? &it->second.sectioned : nullptr;
    }

  private:
    struct ThreadIndex
    {
        sim::SectionedTrace sectioned;
        std::vector<std::uint32_t> staticIndexOf; ///< per dyn record
        std::vector<std::uint8_t> injectable; ///< executed dest write
    };

    std::uint64_t context_hash_ = 0;
    std::unordered_map<std::uint64_t, ThreadIndex> threads_;
};

/** I/O and hit counters of one SectionCache instance. */
struct SectionCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bytesRead = 0;    ///< bucket bytes loaded from disk
    std::uint64_t bytesWritten = 0; ///< record bytes appended
    std::uint64_t corruptRecords = 0; ///< skipped on load (not errors)
};

/**
 * The on-disk cache.  Not thread-safe: the engine drives it from the
 * campaign thread only (lookups before classification, stores after).
 * Multi-*process* sharing of one directory is safe by design (atomic
 * O_APPEND appends, self-checksummed records).
 */
class SectionCache
{
  public:
    /** Opens (and creates, recursively) the cache directory. */
    explicit SectionCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Look up one entry; loads the bucket file on first touch.
     * Counts a hit or miss in stats().
     */
    std::optional<SectionCacheRecord> lookup(std::uint64_t sectionHash,
                                             std::uint64_t keyHash);

    /** Buffer one entry for flush(); overwrites in-memory duplicates. */
    void store(std::uint64_t sectionHash, std::uint64_t keyHash,
               const SectionCacheRecord &record);

    /** Append every buffered entry, one write per bucket file. */
    void flush();

    const SectionCacheStats &stats() const { return stats_; }

  private:
    struct Bucket
    {
        std::unordered_map<std::uint64_t, SectionCacheRecord> entries;
        std::vector<std::uint8_t> pending; ///< serialized, unflushed
        bool loaded = false;
    };

    Bucket &bucket(std::uint64_t sectionHash);
    void loadBucket(std::uint64_t sectionHash, Bucket &bucket);
    std::string bucketPath(std::uint64_t sectionHash) const;

    std::string dir_;
    std::unordered_map<std::uint64_t, Bucket> buckets_;
    SectionCacheStats stats_;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_SECTION_CACHE_HH
