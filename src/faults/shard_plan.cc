/**
 * @file
 * Shard planner implementation.
 */

#include "faults/shard_plan.hh"

#include <stdexcept>

namespace fsp::faults {

std::uint64_t
shardBegin(std::uint32_t shard, std::uint32_t shardCount,
           std::uint64_t siteCount)
{
    // s*count/n without overflow: site counts are bounded well below
    // 2^32 in practice, but keep the arithmetic exact anyway.
    unsigned __int128 product =
        static_cast<unsigned __int128>(shard) * siteCount;
    return static_cast<std::uint64_t>(product / shardCount);
}

JournalKey
shardJournalKey(const JournalKey &campaignKey, std::uint32_t shard,
                std::uint32_t shardCount)
{
    JournalKey key = campaignKey;
    key.tag += "#shard" + std::to_string(shard) + "/" +
               std::to_string(shardCount);
    return key;
}

std::string
shardJournalPath(const std::string &base, std::uint32_t shard,
                 std::uint32_t shardCount)
{
    return base + ".shard" + std::to_string(shard) + "of" +
           std::to_string(shardCount) + ".fspj";
}

ShardPlan
planShards(const JournalKey &key, const std::vector<WeightedSite> &sites,
           std::uint32_t shardCount)
{
    if (shardCount == 0)
        throw std::invalid_argument("shard count must be >= 1");

    ShardPlan plan;
    plan.campaignKey = key;
    plan.campaignSites = sites.size();
    plan.campaignHash = journalHeaderHash(key, sites);
    plan.shards.reserve(shardCount);

    for (std::uint32_t s = 0; s < shardCount; ++s) {
        std::uint64_t begin = shardBegin(s, shardCount, sites.size());
        std::uint64_t end = shardBegin(s + 1, shardCount, sites.size());

        ShardPlanEntry entry;
        entry.info.campaignHash = plan.campaignHash;
        entry.info.siteOffset = begin;
        entry.info.campaignSites = sites.size();
        entry.info.shardIndex = s;
        entry.info.shardCount = shardCount;
        entry.key = shardJournalKey(key, s, shardCount);
        entry.sites.assign(sites.begin() +
                               static_cast<std::ptrdiff_t>(begin),
                           sites.begin() +
                               static_cast<std::ptrdiff_t>(end));
        entry.headerHash = journalHeaderHash(entry.key, entry.sites);
        plan.shards.push_back(std::move(entry));
    }
    return plan;
}

void
prepareShardJournal(const std::string &path, const ShardPlanEntry &entry,
                    std::uint64_t modelHash)
{
    // Resume-or-create with the shard identity; on resume, additionally
    // require the extension block to match the plan exactly -- a stale
    // or renumbered shard file must never be silently adopted.
    CampaignJournal::Resume resume;
    try {
        resume = CampaignJournal::inspect(path, entry.headerHash,
                                          modelHash, entry.sites.size());
    } catch (const JournalError &) {
        // Missing file (or unreadable): seal a fresh shard journal.
        // Validation errors on an *existing* file would also land here,
        // but re-creating from scratch is exactly the recovery path for
        // those too -- except identity mismatches, which openOrResume
        // in the worker would reject; distinguish by re-checking
        // existence via inspect's error being ENOENT-driven is not
        // worth the complexity: create() truncates, and a mismatched
        // header hash means the file is not this shard's journal.
        CampaignJournal::create(path, entry.headerHash, modelHash,
                                entry.sites.size(), &entry.info);
        return;
    }
    if (!resume.shard || !(*resume.shard == entry.info)) {
        throw JournalError("journal '" + path +
                           "' is not a shard journal for this plan "
                           "(missing or mismatched shard extension)");
    }
}

} // namespace fsp::faults
