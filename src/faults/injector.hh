/**
 * @file
 * The fault injector: runs one kernel launch per fault site against a
 * pristine memory image and classifies the outcome against the golden
 * (fault-free) output.
 *
 * When the golden run's per-CTA footprints prove the kernel's CTAs
 * independent (see faults/slicing.hh), injection runs execute only the
 * faulty CTA against a dirty-range-restored image and compare only that
 * CTA's share of the output -- bit-identical outcomes at a fraction of
 * the work.  Runs whose fault wanders into another CTA's footprint
 * abort with RunStatus::SliceHazard and are transparently replayed on
 * the full grid, so the sliced engine never changes a classification.
 *
 * Orthogonally, golden-run checkpoints (faults/checkpoint.hh) cut the
 * temporal axis: injections resume from the latest capture point
 * at-or-before the fault's dynamic index instead of re-executing the
 * kernel from instruction zero.  Both axes compose, both have A/B
 * switches, and neither ever changes a classification.
 */

#ifndef FSP_FAULTS_INJECTOR_HH
#define FSP_FAULTS_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faults/checkpoint.hh"
#include "faults/fault_model.hh"
#include "faults/fault_site.hh"
#include "faults/outcome.hh"
#include "faults/output_spec.hh"
#include "faults/sdc_anatomy.hh"
#include "faults/slicing.hh"
#include "sim/executor.hh"

namespace fsp {
class JsonWriter;
} // namespace fsp

namespace fsp::faults {

class CampaignObserver;

/**
 * Counters describing how injection runs were executed.
 *
 * Every field must be a std::uint64_t counter: merge()/since() cover
 * the full field list and a static_assert on the struct size (see
 * injector.cc) catches fields added without updating them.
 */
struct InjectionStats
{
    std::uint64_t injections = 0;      ///< inject() calls
    std::uint64_t slicedRuns = 0;      ///< classified via the sliced path
    std::uint64_t fullGridRuns = 0;    ///< full-grid executor runs
    std::uint64_t hazardFallbacks = 0; ///< sliced runs aborted on a hazard
    std::uint64_t invalidSites = 0;    ///< sites rejected by validation
    std::uint64_t executedCtas = 0;    ///< CTAs simulated, all runs
    std::uint64_t restoredBytes = 0;   ///< bytes copied by restore/delta
    std::uint64_t checkpointRestores = 0; ///< runs resumed from a checkpoint
    std::uint64_t skippedDynInstrs = 0;   ///< golden instrs not re-executed
    std::uint64_t detectedFaults = 0; ///< suppressed by a protection plan

    /** Accumulate another tally into this one. */
    void merge(const InjectionStats &other);

    /** Counter deltas relative to an earlier snapshot. */
    InjectionStats since(const InjectionStats &before) const;

    /** One-line human-readable rendering. */
    std::string summary() const;
};

/**
 * Emit every InjectionStats counter as fields of the currently open
 * JSON object (the machine-readable counterpart of summary(), shared
 * by the fsp and resilience_report --json outputs).
 */
void writeInjectionStats(JsonWriter &json, const InjectionStats &stats);

/** Engine knobs fixed at Injector construction. */
struct InjectorOptions
{
    /** Record golden checkpoints and resume injections from them. */
    bool checkpoints = true;

    /** Recording cadence when checkpoints are on. */
    CheckpointOptions checkpointing;
};

/**
 * Injects single-bit destination-register faults and classifies run
 * outcomes.  Construction performs the golden run (which must complete)
 * and derives the hang-detection budget from the observed per-thread
 * dynamic instruction counts, the per-thread golden iCnt used for site
 * validation, and the CTA-slicing plan.
 */
class Injector
{
  public:
    /**
     * @param program decoded kernel (must outlive the injector).
     * @param config launch configuration.
     * @param image pristine initialised global memory (copied; restored
     *        before every injection).
     * @param outputs the application's output regions.
     * @param options engine knobs (checkpoint recording).
     */
    Injector(const sim::Program &program, const sim::LaunchConfig &config,
             const sim::GlobalMemory &image,
             std::vector<OutputRegion> outputs,
             const InjectorOptions &options = {});

    /**
     * Duplicate this injector without redoing the golden run: the
     * golden outputs, hang budget, slicing plan and pristine image are
     * copied (the plan itself is shared, immutable).  The clone
     * references the same Program and starts with zeroed stats.  This
     * is how the parallel campaign engine gives each worker a private
     * injector while paying for golden-state derivation only once.
     */
    std::unique_ptr<Injector> clone() const;

    /**
     * Inject one fault and classify the outcome.
     *
     * The active fault model (single-bit destination flip by default)
     * maps the site triple to the executed fault plan.  Sites the
     * model rejects -- universally, a dynamic index beyond the target
     * thread's golden instruction count or a thread id outside the
     * launch; per-model, e.g. a shared-memory fault in a kernel
     * without shared memory -- classify as Outcome::Invalid with a
     * diagnostic: they denote a caller bug, not a masked fault.
     */
    Outcome inject(const FaultSite &site);

    /**
     * As inject(site), additionally filling @p detail (when non-null)
     * with the static instruction the fault first corrupted and, for
     * SDC outcomes, the corruption anatomy.
     */
    Outcome inject(const FaultSite &site, InjectionDetail *detail);

    /** @{ Fault-model strategy selection (single-bit by default). */
    void setFaultModel(std::shared_ptr<const FaultModel> model,
                       std::uint64_t modelSeed = 0);
    const FaultModel &faultModel() const { return *model_; }
    std::shared_ptr<const FaultModel> faultModelPtr() const
    {
        return model_;
    }
    /** @} */

    /** @{ Protection-plan selection (none by default).  Faults firing
     *  inside the plan's coverage are suppressed and counted as
     *  detections (stats().detectedFaults); the run then classifies
     *  against golden outputs exactly as if the fault never fired.
     *  Immutable once set, shared across clone()s like the model. */
    void
    setProtectionPlan(std::shared_ptr<const sim::ProtectionPlan> plan)
    {
        protection_ = std::move(plan);
    }
    std::shared_ptr<const sim::ProtectionPlan> protectionPlan() const
    {
        return protection_;
    }
    /** @} */

    /** Total injection attempts so far (== stats().injections). */
    std::uint64_t runsPerformed() const { return stats_.injections; }

    /** Execution counters for this injector. */
    const InjectionStats &stats() const { return stats_; }

    /** Maximum golden per-thread iCnt (budget basis). */
    std::uint64_t goldenMaxICnt() const { return golden_max_icnt_; }

    /** Golden dynamic instruction count of one thread. */
    std::uint64_t
    goldenICnt(std::uint64_t thread) const
    {
        return golden_icnt_[thread];
    }

    /** @{ Per-site strategy selection. */
    void setSlicingEnabled(bool enabled) { slicing_enabled_ = enabled; }
    bool slicingEnabled() const { return slicing_enabled_; }

    /** Will injections actually use the sliced path? */
    bool
    slicingActive() const
    {
        return slicing_enabled_ && slicing_->independent();
    }

    /** The CTA-independence analysis result for this kernel. */
    const SlicingPlan &slicingPlan() const { return *slicing_; }

    /** "sliced (...)" / "full-grid (...)" decision string. */
    std::string slicingDescription() const;
    /** @} */

    /** @{ Checkpointed temporal replay (A/B switch mirrors slicing). */
    void setCheckpointsEnabled(bool enabled)
    {
        checkpoints_enabled_ = enabled;
    }
    bool checkpointsEnabled() const { return checkpoints_enabled_; }

    /** Will injections actually resume from checkpoints? */
    bool
    checkpointsActive() const
    {
        return checkpoints_enabled_ && checkpoints_ &&
               !checkpoints_->empty();
    }

    /** The recorded store; null when built with checkpoints off. */
    const CheckpointStore *checkpointStore() const
    {
        return checkpoints_.get();
    }

    /** "checkpoints on (...)" / "checkpoints off (...)" string. */
    std::string checkpointDescription() const;
    /** @} */

    /**
     * Attach a campaign observer receiving this injector's
     * CheckpointRestored / SliceHazard events, tagged with @p worker.
     * Not owned; null detaches.  The campaign engine scopes this to one
     * run (see InjectorObserverScope); clones start detached.
     */
    void
    setObserver(CampaignObserver *observer, unsigned worker)
    {
        observer_ = observer;
        observer_worker_ = worker;
    }

    /** The executor used for injection runs (with hang budget set). */
    const sim::Executor &executor() const { return executor_; }

    /** The pristine memory image. */
    const sim::GlobalMemory &image() const { return image_; }

    /** @{ Campaign identity inputs for the section cache (analysis
     *  builds campaignContextHash / the SectionIndex from these). */
    /** The program this injector runs. */
    const sim::Program &program() const { return program_; }

    /** The declared output regions, in declaration order. */
    const std::vector<OutputRegion> &outputs() const { return outputs_; }

    /** Golden output bytes, parallel to outputs(). */
    const std::vector<std::vector<std::uint8_t>> &
    goldenOutputs() const
    {
        return golden_outputs_;
    }
    /** @} */

  private:
    Injector(const Injector &) = default;

    sim::LaunchConfig budgetedConfig(const sim::LaunchConfig &config);

    Outcome classifyFullGrid(const FaultSite &site,
                             const sim::FaultPlan &plan,
                             const sim::RunResult &result,
                             InjectionDetail *detail);
    Outcome classifyOutputs(
        const std::vector<std::vector<std::uint8_t>> &test,
        InjectionDetail *detail);
    std::vector<std::vector<std::uint8_t>>
    reconstructSlicedOutputs(std::uint64_t cta);

    // NOTE: golden state and the slicing plan are declared before
    // executor_ because budgetedConfig() -- invoked while initialising
    // executor_ -- performs the golden run and fills them in.
    const sim::Program &program_;
    sim::GlobalMemory image_;
    std::vector<OutputRegion> outputs_;
    std::uint64_t golden_max_icnt_ = 0;
    std::vector<std::uint64_t> golden_icnt_;
    std::vector<std::vector<std::uint8_t>> golden_outputs_;
    std::shared_ptr<const SlicingPlan> slicing_;
    sim::Executor executor_;
    sim::GlobalMemory scratch_;
    /** Immutable once recorded; shared across clone()s like slicing_. */
    std::shared_ptr<const CheckpointStore> checkpoints_;
    bool slicing_enabled_ = true;
    bool checkpoints_enabled_ = true;
    /** Immutable strategy, shared across clone()s. */
    std::shared_ptr<const FaultModel> model_;
    /** Immutable protection set, shared across clone()s; may be null. */
    std::shared_ptr<const sim::ProtectionPlan> protection_;
    /** Launch facts handed to the model; goldenICnt stays per-clone. */
    ModelContext model_ctx_;
    InjectionStats stats_;
    /** Event sink for checkpoint/hazard events; never cloned. */
    CampaignObserver *observer_ = nullptr;
    unsigned observer_worker_ = 0;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_INJECTOR_HH
