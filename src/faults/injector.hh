/**
 * @file
 * The fault injector: runs one kernel launch per fault site against a
 * pristine memory image and classifies the outcome against the golden
 * (fault-free) output.
 */

#ifndef FSP_FAULTS_INJECTOR_HH
#define FSP_FAULTS_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_site.hh"
#include "faults/outcome.hh"
#include "faults/output_spec.hh"
#include "sim/executor.hh"

namespace fsp::faults {

/**
 * Injects single-bit destination-register faults and classifies run
 * outcomes.  Construction performs the golden run (which must complete)
 * and derives the hang-detection budget from the observed per-thread
 * dynamic instruction counts.
 */
class Injector
{
  public:
    /**
     * @param program decoded kernel (must outlive the injector).
     * @param config launch configuration.
     * @param image pristine initialised global memory (copied; restored
     *        before every injection).
     * @param outputs the application's output regions.
     */
    Injector(const sim::Program &program, const sim::LaunchConfig &config,
             const sim::GlobalMemory &image,
             std::vector<OutputRegion> outputs);

    /**
     * Duplicate this injector without redoing the golden run: the
     * golden outputs, hang budget, and pristine image are copied.  The
     * clone references the same Program and starts with a zero run
     * count.  This is how the parallel campaign engine gives each
     * worker a private injector while paying for golden-state
     * derivation only once.
     */
    std::unique_ptr<Injector> clone() const;

    /** Inject one fault and classify the outcome. */
    Outcome inject(const FaultSite &site);

    /** Total injection runs performed so far. */
    std::uint64_t runsPerformed() const { return runs_; }

    /** Maximum golden per-thread iCnt (budget basis). */
    std::uint64_t goldenMaxICnt() const { return golden_max_icnt_; }

    /** The executor used for injection runs (with hang budget set). */
    const sim::Executor &executor() const { return executor_; }

    /** The pristine memory image. */
    const sim::GlobalMemory &image() const { return image_; }

  private:
    Injector(const Injector &) = default;

    sim::LaunchConfig budgetedConfig(const sim::LaunchConfig &config);

    // NOTE: golden_max_icnt_ and golden_outputs_ are declared before
    // executor_ because budgetedConfig() -- invoked while initialising
    // executor_ -- performs the golden run and fills them in.
    const sim::Program &program_;
    sim::GlobalMemory image_;
    std::vector<OutputRegion> outputs_;
    std::uint64_t golden_max_icnt_ = 0;
    std::vector<std::vector<std::uint8_t>> golden_outputs_;
    sim::Executor executor_;
    sim::GlobalMemory scratch_;
    std::uint64_t runs_ = 0;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_INJECTOR_HH
