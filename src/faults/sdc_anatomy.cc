#include "faults/sdc_anatomy.hh"

#include <algorithm>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace fsp::faults {

namespace {

constexpr std::string_view kPatternNames[kNumSdcPatterns] = {
    "none",   "single-element", "row-streak",
    "column-streak", "block",   "scattered",
};

constexpr std::string_view kBucketLabels[kMagnitudeBuckets] = {
    "<=1e-06", "<=1e-04", "<=1e-02", "<=1", "<=1e+02", "<=1e+06", ">1e+06",
};

/** Spatial classification of one region's corrupted element indices. */
SdcPattern
classifyRegion(const OutputRegion &region,
               const std::vector<ElementDiff> &diffs)
{
    if (diffs.empty())
        return SdcPattern::None;
    if (diffs.size() == 1)
        return SdcPattern::SingleElement;

    std::uint64_t elems =
        (region.bytes + elemSize(region.type) - 1) / elemSize(region.type);
    std::uint64_t rows = region.rows ? region.rows : 1;
    std::uint64_t cols = std::max<std::uint64_t>(1, (elems + rows - 1) / rows);

    std::uint64_t min_row = ~std::uint64_t{0}, max_row = 0;
    std::uint64_t min_col = ~std::uint64_t{0}, max_col = 0;
    bool contiguous = true;
    bool same_col_stride = true;
    for (std::size_t i = 0; i < diffs.size(); ++i) {
        std::uint64_t idx = diffs[i].index;
        std::uint64_t row = idx / cols, col = idx % cols;
        min_row = std::min(min_row, row);
        max_row = std::max(max_row, row);
        min_col = std::min(min_col, col);
        max_col = std::max(max_col, col);
        if (i > 0) {
            if (idx != diffs[i - 1].index + 1)
                contiguous = false;
            if (idx != diffs[i - 1].index + cols)
                same_col_stride = false;
        }
    }

    if (min_row == max_row && contiguous)
        return SdcPattern::RowStreak;
    if (min_col == max_col && same_col_stride)
        return SdcPattern::ColumnStreak;

    std::uint64_t height = max_row - min_row + 1;
    std::uint64_t width = max_col - min_col + 1;
    if (height > 1 && width > 1 && diffs.size() * 2 >= height * width)
        return SdcPattern::Block;
    return SdcPattern::Scattered;
}

} // namespace

std::string_view
sdcPatternName(SdcPattern pattern)
{
    auto index = static_cast<std::size_t>(pattern);
    return index < kNumSdcPatterns ? kPatternNames[index] : "unknown";
}

std::size_t
magnitudeBucket(double relError)
{
    for (std::size_t i = 0; i < kMagnitudeEdges.size(); ++i)
        if (relError <= kMagnitudeEdges[i])
            return i;
    return kMagnitudeBuckets - 1; // overflow, incl. NaN/Inf
}

std::string_view
magnitudeBucketLabel(std::size_t bucket)
{
    return bucket < kMagnitudeBuckets ? kBucketLabels[bucket] : "unknown";
}

SdcAnatomyRecord
classifySdc(const std::vector<OutputRegion> &regions,
            const std::vector<std::vector<std::uint8_t>> &golden,
            const std::vector<std::vector<std::uint8_t>> &test)
{
    FSP_ASSERT(golden.size() == regions.size() &&
                   test.size() == regions.size(),
               "output capture arity mismatch");
    SdcAnatomyRecord record;
    SdcPattern pattern = SdcPattern::None;
    std::size_t corrupted_regions = 0;
    for (std::size_t r = 0; r < regions.size(); ++r) {
        std::vector<ElementDiff> diffs =
            diffRegion(regions[r], golden[r], test[r]);
        if (diffs.empty())
            continue;
        ++corrupted_regions;
        pattern = classifyRegion(regions[r], diffs);
        for (const ElementDiff &diff : diffs)
            ++record.magnitude[magnitudeBucket(diff.relError)];
    }
    if (corrupted_regions == 0)
        record.pattern = SdcPattern::None;
    else if (corrupted_regions > 1)
        record.pattern = record.corruptedElements() == 1
                             ? SdcPattern::SingleElement
                             : SdcPattern::Scattered;
    else
        record.pattern = pattern;
    return record;
}

void
SdcAnatomyProfile::addRun(Outcome outcome, double weight,
                          std::uint32_t staticIndex,
                          const SdcAnatomyRecord *anatomy)
{
    FSP_ASSERT(outcome != Outcome::Invalid,
               "Invalid outcomes must not reach the anatomy profile");
    StaticClassCounts &entry = by_static_[staticIndex];
    ++entry.runs;
    switch (outcome) {
      case Outcome::Masked: entry.masked += weight; break;
      case Outcome::SDC: entry.sdc += weight; break;
      case Outcome::Other: entry.other += weight; break;
      case Outcome::Invalid: break;
    }
    if (outcome != Outcome::SDC || !anatomy)
        return;
    ++sdc_runs_;
    auto pattern = static_cast<std::size_t>(anatomy->pattern);
    pattern_weight_[pattern] += weight;
    ++pattern_runs_[pattern];
    for (std::size_t i = 0; i < kMagnitudeBuckets; ++i)
        magnitude_[i] += anatomy->magnitude[i];
}

void
SdcAnatomyProfile::merge(const SdcAnatomyProfile &other)
{
    for (std::size_t i = 0; i < kNumSdcPatterns; ++i) {
        pattern_weight_[i] += other.pattern_weight_[i];
        pattern_runs_[i] += other.pattern_runs_[i];
    }
    for (std::size_t i = 0; i < kMagnitudeBuckets; ++i)
        magnitude_[i] += other.magnitude_[i];
    for (const auto &[index, counts] : other.by_static_) {
        StaticClassCounts &entry = by_static_[index];
        entry.masked += counts.masked;
        entry.sdc += counts.sdc;
        entry.other += counts.other;
        entry.runs += counts.runs;
    }
    sdc_runs_ += other.sdc_runs_;
}

std::vector<SdcAnatomyProfile::RankedStatic>
SdcAnatomyProfile::ranking(std::size_t limit) const
{
    std::vector<RankedStatic> out;
    out.reserve(by_static_.size());
    for (const auto &[index, counts] : by_static_)
        out.push_back({index, counts});
    std::stable_sort(out.begin(), out.end(),
                     [](const RankedStatic &a, const RankedStatic &b) {
                         if (a.counts.sdc != b.counts.sdc)
                             return a.counts.sdc > b.counts.sdc;
                         return a.staticIndex < b.staticIndex;
                     });
    if (limit && out.size() > limit)
        out.resize(limit);
    return out;
}

std::string
SdcAnatomyProfile::summary() const
{
    std::ostringstream os;
    os << "sdc anatomy:";
    bool any = false;
    for (std::size_t i = 1; i < kNumSdcPatterns; ++i) {
        if (pattern_runs_[i] == 0)
            continue;
        os << (any ? " | " : " ") << kPatternNames[i] << ' '
           << pattern_runs_[i];
        any = true;
    }
    if (!any)
        os << " no SDC runs";
    os << "  (n=" << sdc_runs_ << ')';
    return os.str();
}

void
SdcAnatomyProfile::writeJson(JsonWriter &json, std::size_t rankLimit) const
{
    json.beginObject("sdc_anatomy");
    json.field("sdc_runs", sdc_runs_);
    json.beginObject("patterns");
    for (std::size_t i = 1; i < kNumSdcPatterns; ++i) {
        json.beginObject(kPatternNames[i]);
        json.field("runs", pattern_runs_[i]);
        json.field("weight", pattern_weight_[i]);
        json.endObject();
    }
    json.endObject();
    json.beginObject("magnitude_histogram");
    for (std::size_t i = 0; i < kMagnitudeBuckets; ++i)
        json.field(kBucketLabels[i], magnitude_[i]);
    json.endObject();
    json.beginArray("static_ranking");
    for (const RankedStatic &entry : ranking(rankLimit)) {
        json.beginObject();
        json.field("static_index",
                   static_cast<std::uint64_t>(entry.staticIndex));
        json.field("runs", entry.counts.runs);
        json.field("masked", entry.counts.masked);
        json.field("sdc", entry.counts.sdc);
        json.field("other", entry.counts.other);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
SdcAnatomyProfile::exportMetrics(metrics::Registry &registry) const
{
    for (std::size_t i = 1; i < kNumSdcPatterns; ++i) {
        std::string labels = "pattern=\"" + std::string(kPatternNames[i]) +
                             "\"";
        registry.add(registry.counter("fsp_sdc_pattern_runs_total",
                                      "SDC runs by corruption pattern",
                                      labels),
                     pattern_runs_[i]);
    }
    for (std::size_t i = 0; i < kMagnitudeBuckets; ++i) {
        std::string labels = "bucket=\"" + std::string(kBucketLabels[i]) +
                             "\"";
        registry.add(
            registry.counter("fsp_sdc_magnitude_elements_total",
                             "corrupted output elements by relative-error "
                             "magnitude",
                             labels),
            magnitude_[i]);
    }
}

} // namespace fsp::faults
