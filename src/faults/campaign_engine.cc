/**
 * @file
 * Unified campaign engine implementation.
 */

#include "faults/campaign_engine.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>

#include "util/json.hh"
#include "util/logging.hh"

namespace fsp::faults {

std::string
CampaignStats::summary() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%llu sites in %.3f s (%.0f sites/s, %u workers, "
                  "chunk %zu)",
                  static_cast<unsigned long long>(sites),
                  elapsedSeconds, sitesPerSecond, workers, chunkSize);
    std::string text = buf;
    if (replayedSites > 0) {
        std::snprintf(buf, sizeof(buf),
                      ", %llu replayed from journal",
                      static_cast<unsigned long long>(replayedSites));
        text += buf;
    }
    if (cacheHits > 0 || cacheMisses > 0) {
        std::snprintf(buf, sizeof(buf),
                      ", cache %llu/%llu hits",
                      static_cast<unsigned long long>(cacheHits),
                      static_cast<unsigned long long>(cacheHits +
                                                      cacheMisses));
        text += buf;
    }
    if (injection.slicedRuns > 0) {
        std::snprintf(buf, sizeof(buf),
                      ", sliced %llu/%llu (%llu hazard fallbacks)",
                      static_cast<unsigned long long>(injection.slicedRuns),
                      static_cast<unsigned long long>(injection.injections),
                      static_cast<unsigned long long>(
                          injection.hazardFallbacks));
        text += buf;
    }
    if (injection.checkpointRestores > 0) {
        std::snprintf(
            buf, sizeof(buf),
            ", ckpt-restores %llu (skipped %llu instrs)",
            static_cast<unsigned long long>(injection.checkpointRestores),
            static_cast<unsigned long long>(injection.skippedDynInstrs));
        text += buf;
    }
    return text;
}

void
writeCampaignStats(JsonWriter &json, const CampaignStats &stats)
{
    json.field("workers", static_cast<std::uint64_t>(stats.workers));
    json.field("chunks", stats.chunks);
    json.field("sites", stats.sites);
    json.field("injectedSites", stats.injectedSites);
    json.field("replayedSites", stats.replayedSites);
    json.beginObject("phases");
    json.field("replaySeconds", stats.replaySeconds);
    json.field("injectSeconds", stats.injectSeconds);
    json.field("foldSeconds", stats.foldSeconds);
    json.field("elapsedSeconds", stats.elapsedSeconds);
    json.endObject();
    json.field("sitesPerSecond", stats.sitesPerSecond);
    if (!stats.journalPath.empty()) {
        json.beginObject("journal");
        json.field("path", stats.journalPath);
        json.field("resumed", stats.resumed);
        json.field("replayedSites", stats.replayedSites);
        json.endObject();
    }
    if (stats.cacheHits > 0 || stats.cacheMisses > 0 ||
        stats.cachedSites > 0) {
        json.beginObject("sectionCache");
        json.field("cachedSites", stats.cachedSites);
        json.field("hits", stats.cacheHits);
        json.field("misses", stats.cacheMisses);
        json.field("bytesRead", stats.cacheBytesRead);
        json.field("bytesWritten", stats.cacheBytesWritten);
        json.endObject();
    }
    if (!stats.workerError.empty()) {
        json.field("workerError", stats.workerError);
        json.field("abandonedChunks", stats.abandonedChunks);
    }
    json.beginObject("injectionStats");
    writeInjectionStats(json, stats.injection);
    json.endObject();
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Resolve the worker count an options struct asks for. */
unsigned
resolveWorkers(const CampaignOptions &options)
{
    return options.workers > 0 ? options.workers
                               : ThreadPool::defaultWorkerCount();
}

/** Resolve the chunk size: explicit, or ~4 chunks per worker. */
std::size_t
resolveChunkSize(const CampaignOptions &options, std::size_t sites,
                 unsigned workers)
{
    if (options.chunkSize > 0)
        return options.chunkSize;
    std::size_t target_chunks = static_cast<std::size_t>(workers) * 4;
    return std::max<std::size_t>(1, (sites + target_chunks - 1) /
                                        target_chunks);
}

/** Prototype-injector knobs implied by the campaign options. */
InjectorOptions
injectorOptionsFor(const CampaignOptions &options)
{
    InjectorOptions injector_options;
    injector_options.checkpoints = options.allowCheckpoints;
    return injector_options;
}

/**
 * Scope guard attaching an observer to every worker injector for one
 * campaign and detaching on exit -- the observer chain lives on
 * runCampaign's stack, so a dangling pointer must never survive it
 * (abortAfterSites unwinds through here).
 */
class InjectorObserverScope
{
  public:
    InjectorObserverScope(
        std::vector<std::unique_ptr<Injector>> &injectors,
        CampaignObserver *observer)
        : injectors_(injectors)
    {
        for (unsigned w = 0; w < injectors_.size(); ++w)
            injectors_[w]->setObserver(observer, w);
    }

    ~InjectorObserverScope()
    {
        for (auto &injector : injectors_)
            injector->setObserver(nullptr, 0);
    }

  private:
    std::vector<std::unique_ptr<Injector>> &injectors_;
};

} // namespace

CampaignEngine::CampaignEngine(const sim::Program &program,
                               const sim::LaunchConfig &config,
                               const sim::GlobalMemory &image,
                               std::vector<OutputRegion> outputs,
                               CampaignOptions options)
    // Pass `options` by copy rather than move: the Injector temporary
    // also reads it (injectorOptionsFor) and argument evaluation order
    // is unspecified.
    : CampaignEngine(
          Injector(program, config, image, std::move(outputs),
                   injectorOptionsFor(options)),
          options)
{
}

CampaignEngine::CampaignEngine(const Injector &prototype,
                               CampaignOptions options)
    : options_(std::move(options)), pool_(resolveWorkers(options_))
{
    injectors_.reserve(pool_.workerCount());
    for (unsigned i = 0; i < pool_.workerCount(); ++i) {
        injectors_.push_back(prototype.clone());
        if (!options_.allowSlicing)
            injectors_.back()->setSlicingEnabled(false);
        if (!options_.allowCheckpoints)
            injectors_.back()->setCheckpointsEnabled(false);
        if (options_.faultModel) {
            // Model randomness is keyed off the campaign seed, making
            // site -> plan a pure function of the campaign identity.
            injectors_.back()->setFaultModel(options_.faultModel,
                                             options_.journalKey.seed);
        }
        if (options_.protection)
            injectors_.back()->setProtectionPlan(options_.protection);
    }
}

std::uint64_t
CampaignEngine::runsPerformed() const
{
    std::uint64_t total = 0;
    for (const auto &injector : injectors_)
        total += injector->runsPerformed();
    return total;
}

void
CampaignEngine::classifyPending(
    const std::vector<std::size_t> &pending,
    const std::function<const FaultSite &(std::size_t)> &siteAt,
    std::vector<Outcome> &outcomes,
    std::vector<InjectionDetail> &details, CampaignJournal *journal,
    CampaignObserver *observer)
{
    unsigned workers = pool_.workerCount();
    std::size_t count = pending.size();
    std::size_t chunk_size = resolveChunkSize(options_, count, workers);
    std::size_t chunks =
        count > 0 ? (count + chunk_size - 1) / chunk_size : 0;

    stats_.workers = workers;
    stats_.chunkSize = chunk_size;
    stats_.chunks = chunks;
    stats_.perWorkerRuns.assign(workers, 0);

    const std::uint64_t block_threads =
        injectors_[0]->executor().config().block.count();

    std::mutex progress_mutex;
    std::uint64_t sites_done = 0;

    std::vector<InjectionStats> before;
    before.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        before.push_back(injectors_[w]->stats());

    // The injectors relay checkpoint-restore and slice-hazard events
    // while classified; detached again even if a worker body throws.
    InjectorObserverScope injector_observers(injectors_, observer);

    auto body = [&](std::size_t chunk, unsigned worker) {
        std::size_t begin = chunk * chunk_size;
        std::size_t end = std::min(begin + chunk_size, count);
        Injector &injector = *injectors_[worker];

        // Process the chunk in (cta, thread, dynIndex) order so
        // consecutive sites resume from the same checkpoint; outcomes
        // land at their original index, so results are unaffected.
        std::vector<std::size_t> order(pending.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               begin),
                                       pending.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               end));
        auto keyOf = [&](std::size_t original) -> SiteKey {
            const FaultSite &site = siteAt(original);
            return {site.thread / block_threads, site.thread,
                    site.dynIndex};
        };
        std::sort(order.begin(), order.end(),
                  [&keyOf](std::size_t a, std::size_t b) {
                      return keyOf(a) < keyOf(b);
                  });
        if (observer) {
            // Per-site wall time is only measured with an observer
            // attached: the unobserved path pays nothing.
            for (std::size_t original : order) {
                auto t_site = Clock::now();
                const FaultSite &site = siteAt(original);
                Outcome outcome =
                    injector.inject(site, &details[original]);
                outcomes[original] = outcome;
                observer->onSiteClassified(
                    {&site, outcome, secondsSince(t_site), worker});
            }
        } else {
            for (std::size_t original : order) {
                outcomes[original] =
                    injector.inject(siteAt(original), &details[original]);
            }
        }

        std::lock_guard<std::mutex> lock(progress_mutex);
        stats_.perWorkerRuns[worker] += end - begin;
        sites_done += end - begin;
        if (journal) {
            // The chunk fold point: make this chunk's outcomes durable
            // in one write + fsync before reporting progress, so a
            // kill never loses a chunk whose progress was observed.
            for (std::size_t p = begin; p < end; ++p) {
                journal->append(pending[p], outcomes[pending[p]],
                                details[pending[p]]);
            }
            CampaignJournal::CommitInfo commit = journal->commitChunk();
            if (observer) {
                observer->onJournalCommit(
                    {commit.records, commit.bytes, false});
            }
        }
        if (observer) {
            observer->onChunkFolded({chunk, end - begin, sites_done,
                                     count, worker});
        }
        if (options_.abortAfterSites > 0 &&
            sites_done >= options_.abortAfterSites) {
            throw CampaignAborted(
                "campaign aborted by abortAfterSites after " +
                std::to_string(sites_done) + " sites");
        }
    };
    try {
        pool_.parallelFor(chunks, body);
    } catch (const CampaignAborted &) {
        // The testing kill-switch; callers assert on the exact type.
        stats_.abandonedChunks = pool_.lastAbandonedChunks();
        throw;
    } catch (const std::exception &e) {
        // A worker body failed: surface the cause and how much of the
        // job the pool abandoned because of it, instead of letting the
        // raw exception escape with no campaign context.
        stats_.workerError = e.what();
        stats_.abandonedChunks = pool_.lastAbandonedChunks();
        throw CampaignError(
            "campaign failed: " + std::string(e.what()) + " (" +
                std::to_string(stats_.abandonedChunks) + " of " +
                std::to_string(chunks) + " chunks abandoned)",
            stats_.abandonedChunks);
    }

    for (unsigned w = 0; w < workers; ++w)
        stats_.injection.merge(injectors_[w]->stats().since(before[w]));
}

CampaignResult
CampaignEngine::runCampaign(
    std::size_t count,
    const std::function<const FaultSite &(std::size_t)> &siteAt,
    const std::function<double(std::size_t)> &weightAt, bool weighted,
    const char *label)
{
    auto t_start = Clock::now();
    stats_ = CampaignStats{};
    stats_.sites = count;
    stats_.journalPath = options_.journalPath;

    // The single notification path; the injector scope guard in
    // classifyPending keeps no pointer past this frame.
    CampaignObserver *observer = options_.observer;

    if (observer) {
        observer->onCampaignBegin({label,
                                   static_cast<std::uint64_t>(count),
                                   pool_.workerCount(),
                                   !options_.journalPath.empty()});
    }

    // --- Phase 1: journal open / outcome replay.
    std::vector<Outcome> outcomes(count, Outcome::Invalid);
    std::vector<InjectionDetail> details(count);
    std::vector<std::size_t> pending;
    std::optional<CampaignJournal> journal;
    CampaignJournal::Resume resume;
    if (!options_.journalPath.empty()) {
        // A protected campaign classifies differently, so its journal
        // must never resume an unprotected one (or one protected by a
        // different plan): fold the plan identity into the key tag.
        JournalKey key = options_.journalKey;
        if (options_.protection) {
            key.tag += "|protect:" +
                       std::to_string(options_.protection->identityHash());
        }
        std::uint64_t hash =
            journalHeaderHash(key, count, siteAt, weightAt);
        std::uint64_t model_hash =
            injectors_[0]->faultModel().identityHash();
        if (options_.resume) {
            journal.emplace(CampaignJournal::openOrResume(
                options_.journalPath, hash, model_hash, count, resume));
            stats_.resumed = true;
        } else {
            journal.emplace(CampaignJournal::create(options_.journalPath,
                                                    hash, model_hash,
                                                    count));
        }
    }
    std::vector<bool> from_cache(count, false);
    if (resume.done.size() == count && resume.doneCount > 0) {
        for (std::size_t i = 0; i < count; ++i) {
            if (resume.done[i]) {
                outcomes[i] = resume.outcomes[i];
                details[i] = resume.details[i];
                from_cache[i] = resume.cached[i];
            } else {
                pending.push_back(i);
            }
        }
    } else {
        pending.resize(count);
        std::iota(pending.begin(), pending.end(), std::size_t{0});
    }
    stats_.replayedSites = count - pending.size();

    // --- Phase 1b: replay unchanged sections from the section cache.
    // Serial, on the campaign thread, before any injection: every
    // still-pending site is mapped to its section coordinates and
    // looked up; hits fill their outcome slot (journaled like any
    // other completed site, flagged fromCache) and misses remember
    // their coordinates so the freshly injected outcome can be stored
    // back after classification.
    std::vector<std::pair<std::size_t, SiteSectionKey>> cache_misses;
    const bool caching =
        options_.sectionCache && options_.sectionIndex;
    const std::uint64_t cache_model_hash =
        caching ? injectors_[0]->faultModel().identityHash() : 0;
    if (caching && !pending.empty()) {
        SectionCache &cache = *options_.sectionCache;
        const SectionIndex &index = *options_.sectionIndex;
        const SectionCacheStats io_before = cache.stats();
        std::vector<std::size_t> still_pending;
        still_pending.reserve(pending.size());
        std::uint64_t appended = 0;
        for (std::size_t i : pending) {
            const FaultSite &site = siteAt(i);
            std::optional<SiteSectionKey> key = index.keyFor(site);
            if (!key) {
                // Un-indexed thread or non-injectable record: always
                // the injection path, and nothing to store back.
                still_pending.push_back(i);
                stats_.cacheMisses++;
                if (observer)
                    observer->onCacheMiss({&site, 0});
                continue;
            }
            std::optional<SectionCacheRecord> rec = cache.lookup(
                key->sectionHash,
                sectionCacheKey(key->siteHash, cache_model_hash,
                                options_.journalKey.seed));
            if (!rec) {
                still_pending.push_back(i);
                cache_misses.emplace_back(i, *key);
                stats_.cacheMisses++;
                if (observer)
                    observer->onCacheMiss({&site, key->sectionHash});
                continue;
            }
            outcomes[i] = rec->outcome;
            details[i] = InjectionDetail{};
            // kStaticFollowsSite resolves against the *current* kernel:
            // an insertion elsewhere renumbered static indices without
            // invalidating the outcome, and the anatomy ranking must
            // attribute it to today's index.
            details[i].staticIndex =
                rec->staticIndex == kStaticFollowsSite
                    ? key->staticIndex
                    : rec->staticIndex;
            details[i].hasAnatomy = rec->hasAnatomy;
            if (rec->hasAnatomy)
                details[i].anatomy = rec->anatomy;
            from_cache[i] = true;
            stats_.cacheHits++;
            if (journal) {
                journal->append(i, outcomes[i], details[i], true);
                appended++;
            }
            if (observer) {
                observer->onCacheHit(
                    {&site, outcomes[i], key->sectionHash});
            }
        }
        stats_.cachedSites = pending.size() - still_pending.size();
        pending = std::move(still_pending);
        if (journal && appended > 0) {
            CampaignJournal::CommitInfo commit = journal->commitChunk();
            if (observer) {
                observer->onJournalCommit(
                    {commit.records, commit.bytes, false});
            }
        }
        stats_.cacheBytesRead =
            cache.stats().bytesRead - io_before.bytesRead;
    }
    stats_.replaySeconds = secondsSince(t_start);
    if (observer)
        observer->onPhaseDone(
            {CampaignPhase::Replay, stats_.replaySeconds});

    // --- Phase 2: parallel classification of the remaining sites.
    auto t_inject = Clock::now();
    classifyPending(pending, siteAt, outcomes, details,
                    journal ? &*journal : nullptr, observer);
    if (caching && !cache_misses.empty()) {
        // Store every freshly classified outcome back under the
        // coordinates remembered at lookup time (including Invalid:
        // outcomes are deterministic functions of the key).  A store
        // uses kStaticFollowsSite when the detail points at the site's
        // own instruction, so the entry survives renumbering edits.
        SectionCache &cache = *options_.sectionCache;
        const SectionCacheStats io_before = cache.stats();
        for (const auto &[i, key] : cache_misses) {
            SectionCacheRecord rec;
            rec.outcome = outcomes[i];
            rec.staticIndex = details[i].staticIndex == key.staticIndex
                                  ? kStaticFollowsSite
                                  : details[i].staticIndex;
            rec.hasAnatomy = details[i].hasAnatomy;
            if (rec.hasAnatomy)
                rec.anatomy = details[i].anatomy;
            cache.store(key.sectionHash,
                        sectionCacheKey(key.siteHash, cache_model_hash,
                                        options_.journalKey.seed),
                        rec);
        }
        cache.flush();
        stats_.cacheBytesWritten =
            cache.stats().bytesWritten - io_before.bytesWritten;
    }
    stats_.injectedSites = pending.size();
    stats_.injectSeconds = secondsSince(t_inject);
    stats_.sitesPerSecond =
        stats_.injectSeconds > 0.0
            ? static_cast<double>(stats_.injectedSites) /
                  stats_.injectSeconds
            : 0.0;
    if (observer)
        observer->onPhaseDone(
            {CampaignPhase::Inject, stats_.injectSeconds});

    // --- Phase 3: serial fold in site order.  Identical order whether
    // an outcome was injected now or replayed from the journal, so the
    // weighted double accumulation is bit-identical to an
    // uninterrupted serial campaign.
    auto t_fold = Clock::now();
    CampaignResult result;
    for (std::size_t i = 0; i < count; ++i) {
        double weight = weighted ? weightAt(i) : 1.0;
        result.dist.add(outcomes[i], weight);
        result.runs++;
        // Anatomy aggregation rides the same serial in-site-order fold,
        // so the profile is bit-identical at any worker count; Invalid
        // sites never reach it.
        if (outcomes[i] != Outcome::Invalid) {
            result.anatomy.addRun(outcomes[i], weight,
                                  details[i].staticIndex,
                                  details[i].hasAnatomy
                                      ? &details[i].anatomy
                                      : nullptr);
        }
    }
    result.injection = stats_.injection;
    if (options_.keepSiteOutcomes)
        result.siteOutcomes = outcomes;
    stats_.foldSeconds = secondsSince(t_fold);
    stats_.elapsedSeconds = secondsSince(t_start);

    // Seal the journal unless this was a replay of an already-complete
    // campaign (its footer already records the original run's phases).
    if (journal && !resume.complete && options_.sectionIndex) {
        // Per-section summaries, in deterministic (thread, section)
        // order; sealed with the footer below.
        const SectionIndex &index = *options_.sectionIndex;
        std::map<std::pair<std::uint64_t, std::uint32_t>,
                 JournalSectionSummary>
            sections;
        for (std::size_t i = 0; i < count; ++i) {
            const FaultSite &site = siteAt(i);
            std::optional<SiteSectionKey> key = index.keyFor(site);
            if (!key)
                continue;
            const sim::SectionedTrace *sectioned =
                index.threadSections(site.thread);
            const auto ordinal =
                sectioned->sectionOf[static_cast<std::size_t>(
                    site.dynIndex)];
            const sim::TraceSection &section =
                sectioned->sections[ordinal];
            JournalSectionSummary &summary =
                sections[{site.thread, ordinal}];
            summary.sectionHash = key->sectionHash;
            summary.tailHash = section.tailContentHash;
            summary.thread = site.thread;
            summary.firstRecord = section.firstRecord;
            summary.recordCount = section.recordCount;
            summary.sites++;
            if (from_cache[i])
                summary.cachedSites++;
            summary.outcomes[static_cast<std::size_t>(outcomes[i])]++;
            if (details[i].hasAnatomy) {
                summary.sdcPatterns[static_cast<std::size_t>(
                    details[i].anatomy.pattern)]++;
            }
        }
        for (const auto &[coords, summary] : sections)
            journal->appendSectionSummary(summary);
    }
    if (journal && !resume.complete) {
        CampaignJournal::Phases phases;
        phases.replaySeconds = stats_.replaySeconds;
        phases.injectSeconds = stats_.injectSeconds;
        phases.foldSeconds = stats_.foldSeconds;
        phases.sitesPerSecond = stats_.sitesPerSecond;
        phases.sitesDone = count;
        phases.workers = stats_.workers;
        CampaignJournal::CommitInfo sealed = journal->writeFooter(phases);
        if (observer)
            observer->onJournalCommit(
                {sealed.records, sealed.bytes, true});
    }
    if (observer) {
        observer->onPhaseDone({CampaignPhase::Fold, stats_.foldSeconds});
        observer->onCampaignEnd({&stats_});
    }

    inform(label, stats_.summary());
    return result;
}

CampaignResult
CampaignEngine::run(const std::vector<FaultSite> &sites)
{
    return runCampaign(
        sites.size(),
        [&sites](std::size_t i) -> const FaultSite & { return sites[i]; },
        [](std::size_t) { return 1.0; }, false, "campaign: ");
}

CampaignResult
CampaignEngine::run(const std::vector<WeightedSite> &sites)
{
    return runCampaign(
        sites.size(),
        [&sites](std::size_t i) -> const FaultSite & {
            return sites[i].site;
        },
        [&sites](std::size_t i) { return sites[i].weight; }, true,
        "campaign (weighted): ");
}

CampaignResult
CampaignEngine::run(const FaultSpace &space, std::size_t runs, Prng &prng)
{
    auto sites = space.sampleSites(runs, prng);
    return run(sites);
}

} // namespace fsp::faults
