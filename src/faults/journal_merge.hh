/**
 * @file
 * Deterministic shard-journal merge: validate the sibling journals of
 * a sharded campaign (shard_plan.hh) and re-fold their outcomes into
 * one CampaignResult bit-identical to a single-process run.
 *
 * Validation proves the shards are exactly the campaign's partition:
 *
 *  - every shard journal opens under the header hash the plan derives
 *    for its sub-list (so its site list, weights, key, and seed match);
 *  - every shard carries an extension block naming the SAME parent
 *    campaign hash and the expected (index, count, offset) -- a shard
 *    from a different campaign, a renumbered shard, or a plain
 *    unsharded journal is rejected with the path in the error;
 *  - coverage is disjoint and gap-free by construction of the
 *    contiguous plan once each extension matches; completeness (every
 *    site classified) is checked per shard.
 *
 * The fold then walks the full campaign in global site order --
 * exactly the serial fold order of CampaignEngine::runCampaign -- so
 * dist, runs, and anatomy come out bit-identical to the
 * single-process result at any shard count.  InjectionStats are
 * execution detail (they depend on slicing/checkpoint strategy and
 * worker interleaving, and are not part of the campaign identity);
 * the merge sums them over shard footers where available but they are
 * not covered by the bit-identity guarantee.
 */

#ifndef FSP_FAULTS_JOURNAL_MERGE_HH
#define FSP_FAULTS_JOURNAL_MERGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "faults/campaign_engine.hh"
#include "faults/shard_plan.hh"

namespace fsp::faults {

/** Per-shard validation/replay summary. */
struct ShardMergeInfo
{
    std::string path;
    std::uint64_t sites = 0;    ///< shard size per the plan
    std::uint64_t done = 0;     ///< classified sites found in journal
    bool complete = false;      ///< journal carries a valid footer
};

/** What mergeShardJournals() produced. */
struct MergeReport
{
    /** The re-folded campaign result (dist, runs, anatomy). */
    CampaignResult result;

    /** Identity of the merged campaign (hash of key + full list). */
    std::uint64_t campaignHash = 0;

    std::uint64_t campaignSites = 0;
    std::uint64_t sitesDone = 0; ///< classified across all shards
    bool complete = false;       ///< every site classified
    std::vector<ShardMergeInfo> shards;

    /** Summed per-phase wall time over sealed shard footers. */
    CampaignJournal::Phases phases;
};

/** Merge knobs. */
struct MergeOptions
{
    /**
     * Require every site classified (the default); false permits
     * merging an in-flight campaign, folding only completed sites
     * (dist/runs/anatomy then cover sitesDone sites -- NOT comparable
     * to a full single-process run until complete).
     */
    bool requireComplete = true;

    /**
     * When non-empty, also emit a merged single-campaign journal at
     * this path: a standard (unsharded) journal under the campaign's
     * own identity hash holding every record at its global index,
     * sealed with a footer when the merge is complete.  The emitted
     * file is exactly what a single-process journaled run would have
     * produced record-wise, so `fsp campaign --resume` replays it.
     */
    std::string mergedJournalPath;
};

/**
 * Validate and merge the shard journals at @p shardPaths (one per
 * shard, in shard order; size determines the shard count) for the
 * campaign defined by @p key and @p sites under fault model
 * @p modelHash.  Throws JournalError naming the offending path on any
 * validation failure.
 */
MergeReport mergeShardJournals(const JournalKey &key,
                               const std::vector<WeightedSite> &sites,
                               std::uint64_t modelHash,
                               const std::vector<std::string> &shardPaths,
                               const MergeOptions &options = {});

} // namespace fsp::faults

#endif // FSP_FAULTS_JOURNAL_MERGE_HH
