/**
 * @file
 * Fault injector implementation.
 */

#include "faults/injector.hh"

#include <algorithm>
#include <cstdio>

#include "faults/observer.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace fsp::faults {

// Trips when a counter is added to InjectionStats without updating
// merge(), since(), summary() and the tools' JSON emission.
static_assert(sizeof(InjectionStats) == 10 * sizeof(std::uint64_t),
              "InjectionStats field list changed: update merge(), "
              "since(), summary() and writeInjectionStats()");

void
InjectionStats::merge(const InjectionStats &other)
{
    injections += other.injections;
    slicedRuns += other.slicedRuns;
    fullGridRuns += other.fullGridRuns;
    hazardFallbacks += other.hazardFallbacks;
    invalidSites += other.invalidSites;
    executedCtas += other.executedCtas;
    restoredBytes += other.restoredBytes;
    checkpointRestores += other.checkpointRestores;
    skippedDynInstrs += other.skippedDynInstrs;
    detectedFaults += other.detectedFaults;
}

InjectionStats
InjectionStats::since(const InjectionStats &before) const
{
    InjectionStats delta;
    delta.injections = injections - before.injections;
    delta.slicedRuns = slicedRuns - before.slicedRuns;
    delta.fullGridRuns = fullGridRuns - before.fullGridRuns;
    delta.hazardFallbacks = hazardFallbacks - before.hazardFallbacks;
    delta.invalidSites = invalidSites - before.invalidSites;
    delta.executedCtas = executedCtas - before.executedCtas;
    delta.restoredBytes = restoredBytes - before.restoredBytes;
    delta.checkpointRestores = checkpointRestores - before.checkpointRestores;
    delta.skippedDynInstrs = skippedDynInstrs - before.skippedDynInstrs;
    delta.detectedFaults = detectedFaults - before.detectedFaults;
    return delta;
}

std::string
InjectionStats::summary() const
{
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "injections %llu | sliced %llu | full-grid %llu | "
        "hazard-fallbacks %llu | invalid %llu | ctas %llu | "
        "restored %llu B | ckpt-restores %llu | skipped %llu instrs | "
        "detected %llu",
        static_cast<unsigned long long>(injections),
        static_cast<unsigned long long>(slicedRuns),
        static_cast<unsigned long long>(fullGridRuns),
        static_cast<unsigned long long>(hazardFallbacks),
        static_cast<unsigned long long>(invalidSites),
        static_cast<unsigned long long>(executedCtas),
        static_cast<unsigned long long>(restoredBytes),
        static_cast<unsigned long long>(checkpointRestores),
        static_cast<unsigned long long>(skippedDynInstrs),
        static_cast<unsigned long long>(detectedFaults));
    return buf;
}

void
writeInjectionStats(JsonWriter &json, const InjectionStats &stats)
{
    json.field("injections", stats.injections);
    json.field("slicedRuns", stats.slicedRuns);
    json.field("fullGridRuns", stats.fullGridRuns);
    json.field("hazardFallbacks", stats.hazardFallbacks);
    json.field("invalidSites", stats.invalidSites);
    json.field("executedCtas", stats.executedCtas);
    json.field("restoredBytes", stats.restoredBytes);
    json.field("checkpointRestores", stats.checkpointRestores);
    json.field("skippedDynInstrs", stats.skippedDynInstrs);
    json.field("detectedFaults", stats.detectedFaults);
}

sim::LaunchConfig
Injector::budgetedConfig(const sim::LaunchConfig &config)
{
    // Golden run with a generous default budget; must complete.
    sim::Executor golden_exec(program_, config);
    sim::GlobalMemory scratch = image_;
    sim::TraceOptions opts;
    opts.perThreadProfiles = true;
    opts.ctaFootprints = true;
    sim::RunResult golden = golden_exec.run(scratch, &opts);
    if (golden.status != sim::RunStatus::Completed)
        fatal("golden run failed: ", golden.diagnostic);

    golden_icnt_.reserve(golden.trace.profiles.size());
    for (const auto &p : golden.trace.profiles) {
        golden_max_icnt_ = std::max(golden_max_icnt_, p.iCnt);
        golden_icnt_.push_back(p.iCnt);
    }

    golden_outputs_ = captureOutputs(scratch, outputs_);
    slicing_ = std::make_shared<const SlicingPlan>(
        SlicingPlan::analyze(std::move(golden.trace.ctaFootprints)));

    // A corrupted loop counter can legitimately lengthen execution; the
    // hang threshold is several times the longest golden thread plus a
    // fixed slack so short kernels are not flagged spuriously.
    sim::LaunchConfig budgeted = config;
    budgeted.maxDynInstrPerThread = 4 * golden_max_icnt_ + 4096;
    return budgeted;
}

Injector::Injector(const sim::Program &program,
                   const sim::LaunchConfig &config,
                   const sim::GlobalMemory &image,
                   std::vector<OutputRegion> outputs,
                   const InjectorOptions &options)
    : program_(program), image_(image), outputs_(std::move(outputs)),
      executor_(program_, budgetedConfig(config)), scratch_(image_)
{
    // The caller's setup pokes left dirty marks in the copied images;
    // scratch_ already equals image_, so start tracking from clean.
    scratch_.resetDirtyTracking();

    // Recording is eager so clone() can share the immutable store:
    // workers never record, they only read.
    if (options.checkpoints) {
        checkpoints_ = std::make_shared<const CheckpointStore>(
            CheckpointStore::record(executor_, image_, golden_icnt_,
                                    options.checkpointing));
    }

    model_ = defaultFaultModel();
    model_ctx_.threads = golden_icnt_.size();
    model_ctx_.blockThreads = executor_.config().block.count();
    model_ctx_.globalBase = sim::GlobalMemory::kBaseAddr;
    model_ctx_.globalBytes = image_.allocatedBytes();
    model_ctx_.sharedBytes = executor_.config().sharedBytes;
    model_ctx_.goldenICnt = &golden_icnt_;
}

std::unique_ptr<Injector>
Injector::clone() const
{
    std::unique_ptr<Injector> copy(new Injector(*this));
    copy->stats_ = InjectionStats{};
    copy->observer_ = nullptr;
    copy->observer_worker_ = 0;
    // The copied context still points at *this* injector's golden
    // trace; repoint it at the clone's own copy.
    copy->model_ctx_.goldenICnt = &copy->golden_icnt_;
    return copy;
}

void
Injector::setFaultModel(std::shared_ptr<const FaultModel> model,
                        std::uint64_t modelSeed)
{
    FSP_ASSERT(model != nullptr, "fault model must not be null");
    model_ = std::move(model);
    model_ctx_.seed = modelSeed;
}

std::string
Injector::slicingDescription() const
{
    std::string text = slicingActive() ? "sliced (" : "full-grid (";
    if (!slicing_enabled_)
        text += "slicing disabled";
    else
        text += slicing_->reason();
    if (slicing_->independent()) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), ", %llu CTAs",
                      static_cast<unsigned long long>(slicing_->ctaCount()));
        text += buf;
    }
    text += ")";
    return text;
}

std::string
Injector::checkpointDescription() const
{
    if (!checkpoints_enabled_)
        return "checkpoints off (disabled)";
    if (!checkpoints_)
        return "checkpoints off (not recorded)";
    if (checkpoints_->empty())
        return "checkpoints off (all CTAs below capture interval)";
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "checkpoints on (%llu capture points, %.1f KiB)",
                  static_cast<unsigned long long>(
                      checkpoints_->totalCheckpoints()),
                  static_cast<double>(checkpoints_->byteSize()) / 1024.0);
    return buf;
}

/**
 * Exact masked/SDC test for a completed sliced run.
 *
 * Reconstructs what the full-grid faulty image would hold inside the
 * output regions:
 *
 *   recon[b] = scratch[b]  if b in (W_c u D) \ W_other
 *              golden[b]   otherwise
 *
 * where W_c is the faulty CTA's golden write footprint, D the
 * chunk-granular dirty set of this run (covers every byte the faulty
 * run actually wrote, including wild non-hazardous stores), and
 * W_other the bytes other CTAs write.  Other CTAs execute fault-free
 * and bit-identically to golden (the store-hazard check proves the
 * faulty CTA touched none of their reads or writes), so golden bytes
 * stand in for them exactly; dirty-chunk over-approximation is safe
 * because the extra bytes are pristine in both the sliced and the
 * full-grid image once W_other is subtracted.
 */
std::vector<std::vector<std::uint8_t>>
Injector::reconstructSlicedOutputs(std::uint64_t cta)
{
    sim::IntervalSet candidates = scratch_.dirtyIntervals();
    candidates.unionWith(slicing_->writes(cta));
    // loadHazards(cta) is exactly the set of bytes other CTAs write.
    candidates = candidates.subtract(slicing_->loadHazards(cta));

    auto test = golden_outputs_;
    for (std::size_t r = 0; r < outputs_.size(); ++r) {
        const OutputRegion &region = outputs_[r];
        sim::IntervalSet overlap =
            candidates.clipped(region.addr, region.addr + region.bytes);
        for (const sim::Interval &iv : overlap.ranges())
            scratch_.readBytes(iv.begin, iv.bytes(),
                               test[r].data() + (iv.begin - region.addr));
    }
    return test;
}

/** Masked/SDC decision over captured outputs, with anatomy on SDC. */
Outcome
Injector::classifyOutputs(
    const std::vector<std::vector<std::uint8_t>> &test,
    InjectionDetail *detail)
{
    if (outputsMatch(outputs_, golden_outputs_, test))
        return Outcome::Masked;
    if (detail) {
        detail->hasAnatomy = true;
        detail->anatomy = classifySdc(outputs_, golden_outputs_, test);
    }
    return Outcome::SDC;
}

Outcome
Injector::classifyFullGrid(const FaultSite &site,
                           const sim::FaultPlan &plan,
                           const sim::RunResult &result,
                           InjectionDetail *detail)
{
    if (result.status != sim::RunStatus::Completed)
        return Outcome::Other;

    if (!plan.applied) {
        // The planned corruption never fired.  Under the default model
        // that means the caller targeted a site outside the enumerated
        // space (worth a warning); richer models reach this state
        // legitimately -- e.g. a barrier-skip site in a thread with no
        // barrier left, or a stuck-at mask beyond the destination
        // width -- and the run is trivially fault-free.  A detection
        // means the fault did fire but the protection plan suppressed
        // it, which is the expected path of a protected campaign.
        if (plan.kind == sim::FaultKind::DestReg &&
            model_->kind() == "single-bit" && !plan.detected) {
            warn("fault plan not applied: thread ", site.thread, " dyn ",
                 site.dynIndex, " bit ", site.bit);
        }
        return Outcome::Masked;
    }

    return classifyOutputs(captureOutputs(scratch_, outputs_), detail);
}

Outcome
Injector::inject(const FaultSite &site)
{
    return inject(site, nullptr);
}

Outcome
Injector::inject(const FaultSite &site, InjectionDetail *detail)
{
    stats_.injections++;
    if (detail)
        *detail = InjectionDetail{};

    // Validate the site under the active model: universally, a dynamic
    // index at or beyond the thread's golden iCnt can never fire and
    // signals a bug in the caller's site enumeration, not a masked
    // fault; models add their own launch requirements.
    std::string why;
    if (!model_->validate(site, model_ctx_, &why)) {
        stats_.invalidSites++;
        warn("invalid fault site under ", model_->identity(), ": ", why);
        return Outcome::Invalid;
    }

    stats_.restoredBytes += scratch_.restoreFrom(image_);
    sim::FaultPlan plan = model_->plan(site, model_ctx_);

    // A checkpoint is usable when the fault thread had executed at most
    // dynIndex instructions at the capture point: the pre-fault replay
    // is bit-identical to golden, so the fault still fires in-replay.
    // Models whose faults predate the site's dynamic index veto this.
    const std::uint64_t block_threads =
        executor_.config().block.count();
    const std::uint64_t cta = site.thread / block_threads;
    const CtaCheckpoint *checkpoint =
        (checkpointsActive() && model_->supportsCheckpoints())
            ? checkpoints_->find(cta, site.thread % block_threads,
                                 site.dynIndex)
            : nullptr;

    if (slicingActive() && model_->supportsSlicing()) {
        sim::CtaSlice slice;
        slice.range = sim::CtaRange::single(cta);
        slice.loadHazards = &slicing_->loadHazards(cta);
        slice.storeHazards = &slicing_->storeHazards(cta);

        sim::RunResult result;
        if (checkpoint) {
            // Deltas are CTA-local, so pristine image + delta is the
            // memory exactly as the CTA's golden execution had left it
            // at the capture point (chunk bleed only reaches bytes in
            // the load-hazard set, which the comparison excludes).
            stats_.restoredBytes +=
                scratch_.applyDelta(checkpoint->delta);
            stats_.checkpointRestores++;
            stats_.skippedDynInstrs += checkpoint->ctaDynInstrs;
            if (observer_) {
                observer_->onCheckpointRestored(
                    {cta, checkpoint->ctaDynInstrs, observer_worker_});
            }
            result = executor_.run(scratch_, nullptr, &plan, &slice,
                                   &checkpoint->state,
                                   protection_.get());
        } else {
            result = executor_.run(scratch_, nullptr, &plan, &slice,
                                   nullptr, protection_.get());
        }
        // Machine-state pages copied out of the snapshot count toward
        // the restore traffic, same as memory-image bytes.
        stats_.restoredBytes += result.restoredStateBytes;
        stats_.executedCtas += result.executedCtas;

        if (result.status != sim::RunStatus::SliceHazard) {
            stats_.slicedRuns++;
            if (plan.detected)
                stats_.detectedFaults++;
            if (detail)
                detail->staticIndex = plan.appliedStatic;
            if (result.status != sim::RunStatus::Completed)
                return Outcome::Other;
            if (!plan.applied) {
                if (plan.kind == sim::FaultKind::DestReg &&
                    model_->kind() == "single-bit" && !plan.detected) {
                    warn("fault plan not applied: thread ", site.thread,
                         " dyn ", site.dynIndex, " bit ", site.bit);
                }
                return Outcome::Masked;
            }
            return classifyOutputs(reconstructSlicedOutputs(cta), detail);
        }

        // The fault wandered into another CTA's footprint; replay the
        // site on the full grid for an exact classification.
        stats_.hazardFallbacks++;
        if (observer_)
            observer_->onSliceHazard({cta, observer_worker_});
        stats_.restoredBytes += scratch_.restoreFrom(image_);
        plan = model_->plan(site, model_ctx_);
    }

    sim::RunResult result;
    if (checkpoint) {
        // Full-grid resume: apply the complete deltas of all preceding
        // CTAs (they execute fault-free, identically to golden), then
        // the faulty CTA's capture-point delta; the run resumes CTA
        // `cta` from the checkpoint and executes every later CTA live.
        for (std::uint64_t before = 0; before < cta; ++before) {
            stats_.restoredBytes +=
                scratch_.applyDelta(checkpoints_->finalDelta(before));
            stats_.skippedDynInstrs +=
                checkpoints_->finalDynInstrs(before);
        }
        stats_.restoredBytes += scratch_.applyDelta(checkpoint->delta);
        stats_.checkpointRestores++;
        stats_.skippedDynInstrs += checkpoint->ctaDynInstrs;
        if (observer_) {
            observer_->onCheckpointRestored(
                {cta, checkpoint->ctaDynInstrs, observer_worker_});
        }
        result = executor_.run(scratch_, nullptr, &plan, nullptr,
                               &checkpoint->state, protection_.get());
    } else {
        result = executor_.run(scratch_, nullptr, &plan, nullptr,
                               nullptr, protection_.get());
    }
    stats_.restoredBytes += result.restoredStateBytes;
    stats_.fullGridRuns++;
    stats_.executedCtas += result.executedCtas;
    if (plan.detected)
        stats_.detectedFaults++;
    if (detail)
        detail->staticIndex = plan.appliedStatic;
    return classifyFullGrid(site, plan, result, detail);
}

} // namespace fsp::faults
