/**
 * @file
 * Fault injector implementation.
 */

#include "faults/injector.hh"

#include <algorithm>

#include "util/logging.hh"

namespace fsp::faults {

sim::LaunchConfig
Injector::budgetedConfig(const sim::LaunchConfig &config)
{
    // Golden run with a generous default budget; must complete.
    sim::Executor golden_exec(program_, config);
    sim::GlobalMemory scratch = image_;
    sim::TraceOptions opts;
    opts.perThreadProfiles = true;
    sim::RunResult golden = golden_exec.run(scratch, &opts);
    if (golden.status != sim::RunStatus::Completed)
        fatal("golden run failed: ", golden.diagnostic);

    for (const auto &p : golden.trace.profiles)
        golden_max_icnt_ = std::max(golden_max_icnt_, p.iCnt);

    golden_outputs_ = captureOutputs(scratch, outputs_);

    // A corrupted loop counter can legitimately lengthen execution; the
    // hang threshold is several times the longest golden thread plus a
    // fixed slack so short kernels are not flagged spuriously.
    sim::LaunchConfig budgeted = config;
    budgeted.maxDynInstrPerThread = 4 * golden_max_icnt_ + 4096;
    return budgeted;
}

Injector::Injector(const sim::Program &program,
                   const sim::LaunchConfig &config,
                   const sim::GlobalMemory &image,
                   std::vector<OutputRegion> outputs)
    : program_(program), image_(image), outputs_(std::move(outputs)),
      executor_(program_, budgetedConfig(config)), scratch_(image_)
{
}

std::unique_ptr<Injector>
Injector::clone() const
{
    std::unique_ptr<Injector> copy(new Injector(*this));
    copy->runs_ = 0;
    return copy;
}

Outcome
Injector::inject(const FaultSite &site)
{
    scratch_ = image_;
    sim::FaultPlan plan = site.toPlan();
    sim::RunResult result = executor_.run(scratch_, nullptr, &plan);
    runs_++;

    if (result.status != sim::RunStatus::Completed)
        return Outcome::Other;

    if (!plan.applied) {
        // The target dynamic instruction performed no destination write
        // (possible only if injection targeted a site outside the
        // enumerated space); the run is trivially fault-free.
        warn("fault plan not applied: thread ", site.thread, " dyn ",
             site.dynIndex, " bit ", site.bit);
        return Outcome::Masked;
    }

    auto test_outputs = captureOutputs(scratch_, outputs_);
    return outputsMatch(outputs_, golden_outputs_, test_outputs)
               ? Outcome::Masked
               : Outcome::SDC;
}

} // namespace fsp::faults
