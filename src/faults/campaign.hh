/**
 * @file
 * Serial campaign drivers: exhaustive injection over an explicit
 * (optionally weighted) site list, and the statistical random-sampling
 * baseline the paper compares against (section II-D).
 *
 * DEPRECATED entry points: new code should drive campaigns through the
 * faults::CampaignEngine facade (campaign_engine.hh), which subsumes
 * these drivers (bit-identical results at any worker count) and adds
 * crash-safe journaling/resume.  The free functions below remain as
 * thin aliases for existing callers and as the reference
 * implementation the engine's determinism suite compares against.
 */

#ifndef FSP_FAULTS_CAMPAIGN_HH
#define FSP_FAULTS_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "faults/outcome.hh"
#include "faults/sdc_anatomy.hh"
#include "util/prng.hh"

namespace fsp::faults {

/** Result of a campaign. */
struct CampaignResult
{
    OutcomeDist dist;        ///< (weighted) outcome tally
    std::uint64_t runs = 0;  ///< injection runs performed
    InjectionStats injection; ///< how the runs were executed

    /**
     * SDC anatomy + per-static-instruction failure-class ranking.
     * Filled by CampaignEngine (serially, in site order); the
     * deprecated serial drivers leave it empty.
     */
    SdcAnatomyProfile anatomy;
};

/** Inject every site in the list, tallying unweighted outcomes. */
CampaignResult runSiteList(Injector &injector,
                           const std::vector<FaultSite> &sites);

/** Inject every weighted site, tallying weighted outcomes. */
CampaignResult runWeightedSiteList(Injector &injector,
                                   const std::vector<WeightedSite> &sites);

/**
 * The statistical baseline: @p runs sites drawn uniformly at random
 * from the full fault space (with replacement), injected and tallied.
 */
CampaignResult runRandomCampaign(Injector &injector,
                                 const FaultSpace &space,
                                 std::size_t runs, Prng &prng);

} // namespace fsp::faults

#endif // FSP_FAULTS_CAMPAIGN_HH
