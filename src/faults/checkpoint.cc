/**
 * @file
 * Golden-run checkpoint recording and lookup.
 */

#include "faults/checkpoint.hh"

#include <algorithm>
#include <unordered_set>

#include "util/logging.hh"

namespace fsp::faults {

CheckpointStore
CheckpointStore::record(const sim::Executor &executor,
                        const sim::GlobalMemory &image,
                        const std::vector<std::uint64_t> &goldenICnt,
                        const CheckpointOptions &options)
{
    const sim::LaunchConfig &config = executor.config();
    const std::uint64_t block_threads = config.block.count();
    const std::uint64_t cta_count = config.grid.count();
    FSP_ASSERT(goldenICnt.size() == cta_count * block_threads,
               "golden iCnt vector does not match the launch");

    CheckpointStore store;
    store.ctas_.resize(cta_count);

    // One scratch image for the whole grid: CTAs execute sequentially,
    // so after CTA c-1 retires the image is exactly the golden memory
    // state CTA c started from.  Dirty tracking is reset per CTA to
    // keep each delta CTA-local.
    sim::GlobalMemory scratch = image;
    scratch.resetDirtyTracking();

    for (std::uint64_t cta = 0; cta < cta_count; ++cta) {
        std::uint64_t cta_total = 0;
        for (std::uint64_t t = 0; t < block_threads; ++t)
            cta_total += goldenICnt[cta * block_threads + t];

        const std::uint64_t interval =
            std::max<std::uint64_t>(options.minInterval,
                                    cta_total /
                                        std::max(1u, options.perCta));

        scratch.resetDirtyTracking();
        sim::MachineState ms = executor.initialCtaState(cta);
        PerCta &per_cta = store.ctas_[cta];
        std::uint64_t watermark = interval;

        while (true) {
            std::string diagnostic;
            sim::CtaStepStatus status = executor.stepCta(
                ms, scratch, watermark, nullptr, nullptr, &diagnostic);
            if (status == sim::CtaStepStatus::Watermark) {
                // Skip the degenerate capture at the very end of the
                // CTA: resuming there saves nothing.
                if (ms.executedDynInstrs > 0 &&
                    ms.executedDynInstrs < cta_total) {
                    // Chain the COW capture off the previous point so
                    // unchanged 4 KiB pages are shared, not copied.
                    const sim::StateSnapshot *prev =
                        per_cta.checkpoints.empty()
                            ? nullptr
                            : &per_cta.checkpoints.back().state;
                    sim::StateSnapshot snap;
                    snap.capture(ms, prev);
                    per_cta.checkpoints.push_back(
                        {std::move(snap), scratch.captureDelta(),
                         ms.executedDynInstrs});
                }
                watermark = ms.executedDynInstrs + interval;
                continue;
            }
            if (status == sim::CtaStepStatus::Retired) {
                per_cta.finalDelta = scratch.captureDelta();
                per_cta.finalDynInstrs = ms.executedDynInstrs;
                break;
            }
            // The caller verified the golden run completes before
            // recording; any abort here is an engine bug.
            fatal("checkpoint recording aborted in CTA ", cta, ": ",
                  diagnostic);
        }
    }
    return store;
}

const CtaCheckpoint *
CheckpointStore::find(std::uint64_t cta, std::uint64_t localThread,
                      std::uint64_t dynIndex) const
{
    if (cta >= ctas_.size())
        return nullptr;
    const CtaCheckpoint *best = nullptr;
    for (const CtaCheckpoint &cp : ctas_[cta].checkpoints) {
        // Per-thread icnt is monotone across capture points.
        if (cp.state.icntOf(localThread) > dynIndex)
            break;
        best = &cp;
    }
    return best;
}

std::size_t
CheckpointStore::totalCheckpoints() const
{
    std::size_t total = 0;
    for (const PerCta &per_cta : ctas_)
        total += per_cta.checkpoints.size();
    return total;
}

std::uint64_t
CheckpointStore::byteSize() const
{
    // Snapshot pages are shared between consecutive capture points;
    // count each distinct page once so the reported footprint matches
    // what the store actually holds.
    std::unordered_set<const void *> seen;
    std::uint64_t total = 0;
    for (const PerCta &per_cta : ctas_) {
        for (const CtaCheckpoint &cp : per_cta.checkpoints)
            total += cp.state.uniqueBytes(seen) + cp.delta.byteSize();
        total += per_cta.finalDelta.byteSize();
    }
    return total;
}

} // namespace fsp::faults
