/**
 * @file
 * Stock campaign observers: fan-out list, metrics bridge, and live
 * progress reporting.
 */

#include "faults/observer.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "faults/campaign_engine.hh"
#include "util/logging.hh"

namespace fsp::faults {

const char *
campaignPhaseName(CampaignPhase phase)
{
    switch (phase) {
      case CampaignPhase::Replay:
        return "replay";
      case CampaignPhase::Inject:
        return "inject";
      case CampaignPhase::Fold:
        return "fold";
    }
    return "?";
}

void
ObserverList::onCampaignBegin(const CampaignBegin &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onCampaignBegin(event);
}

void
ObserverList::onSiteClassified(const SiteClassified &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onSiteClassified(event);
}

void
ObserverList::onCheckpointRestored(const CheckpointRestored &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onCheckpointRestored(event);
}

void
ObserverList::onSliceHazard(const SliceHazard &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onSliceHazard(event);
}

void
ObserverList::onCacheHit(const CacheHit &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onCacheHit(event);
}

void
ObserverList::onCacheMiss(const CacheMiss &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onCacheMiss(event);
}

void
ObserverList::onChunkFolded(const ChunkFolded &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onChunkFolded(event);
}

void
ObserverList::onJournalCommit(const JournalCommit &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onJournalCommit(event);
}

void
ObserverList::onPhaseDone(const PhaseDone &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onPhaseDone(event);
}

void
ObserverList::onCampaignEnd(const CampaignEnd &event)
{
    for (CampaignObserver *observer : observers_)
        observer->onCampaignEnd(event);
}

namespace {

/** Injection-latency bucket edges (seconds): 100us .. 10s. */
std::vector<double>
latencyEdges()
{
    return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
            5e-2, 0.1,    0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
}

const char *const kOutcomeLabels[4] = {
    "outcome=\"masked\"",
    "outcome=\"sdc\"",
    "outcome=\"other\"",
    "outcome=\"invalid\"",
};

} // namespace

MetricsObserver::MetricsObserver(metrics::Registry &registry)
    : registry_(registry)
{
    for (std::size_t o = 0; o < 4; ++o) {
        site_outcomes_[o] = registry_.counter(
            "fsp_campaign_sites_total",
            "classified fault sites by outcome", kOutcomeLabels[o]);
        latency_[o] = registry_.histogram(
            "fsp_injection_seconds",
            "per-site injection wall time by outcome", latencyEdges(),
            kOutcomeLabels[o]);
    }
    campaigns_ = registry_.counter("fsp_campaigns_total",
                                   "campaign engine runs started");
    scheduled_sites_ =
        registry_.counter("fsp_campaign_scheduled_sites_total",
                          "sites scheduled across campaigns");
    replayed_sites_ =
        registry_.counter("fsp_campaign_replayed_sites_total",
                          "sites satisfied from a journal, not injected");
    chunks_ = registry_.counter("fsp_campaign_chunks_total",
                                "campaign chunks folded");
    journal_commits_ =
        registry_.counter("fsp_campaign_journal_commits_total",
                          "journal write+fsync batches");
    journal_bytes_ =
        registry_.counter("fsp_campaign_journal_bytes_total",
                          "bytes made durable in the journal");
    checkpoint_restores_ =
        registry_.counter("fsp_campaign_checkpoint_restores_total",
                          "injection runs resumed from a checkpoint");
    skipped_instrs_ = registry_.counter(
        "fsp_campaign_skipped_dyn_instrs_total",
        "golden instructions not re-executed thanks to checkpoints");
    slice_hazards_ =
        registry_.counter("fsp_campaign_slice_hazards_total",
                          "sliced runs escalated to full-grid replay");
    cache_hits_ = registry_.counter(
        "fsp_cache_hits_total",
        "sites satisfied from the section cache, not injected");
    cache_misses_ =
        registry_.counter("fsp_cache_misses_total",
                          "sites that missed the section cache");
    cache_bytes_ =
        registry_.counter("fsp_cache_bytes_total",
                          "section cache bytes read plus written");
    for (std::size_t p = 0; p < 3; ++p) {
        std::string label =
            std::string("phase=\"") +
            campaignPhaseName(static_cast<CampaignPhase>(p)) + "\"";
        phase_seconds_[p] = registry_.gauge(
            "fsp_campaign_phase_seconds",
            "cumulative wall time per campaign phase", label);
    }
    workers_ = registry_.gauge("fsp_campaign_workers",
                               "worker threads of the latest campaign");
    sites_per_second_ =
        registry_.gauge("fsp_campaign_sites_per_second",
                        "injection throughput of the latest campaign");
}

metrics::Shard &
MetricsObserver::shard(unsigned worker)
{
    // Sized at onCampaignBegin; an engine never reports a worker id
    // at or beyond the count it announced.
    return shards_[worker];
}

void
MetricsObserver::onCampaignBegin(const CampaignBegin &event)
{
    // Fold any residue an aborted campaign left in the shards, then
    // make sure one private shard exists per announced worker.
    for (metrics::Shard &shard : shards_)
        registry_.fold(shard);
    while (shards_.size() < event.workers)
        shards_.push_back(registry_.makeShard());
    registry_.add(campaigns_);
    registry_.add(scheduled_sites_, event.sitesTotal);
    registry_.set(workers_, static_cast<double>(event.workers));
}

void
MetricsObserver::onSiteClassified(const SiteClassified &event)
{
    metrics::Shard &s = shard(event.worker);
    auto outcome = static_cast<std::size_t>(event.outcome);
    s.add(site_outcomes_[outcome]);
    s.observe(latency_[outcome], event.seconds);
}

void
MetricsObserver::onCheckpointRestored(const CheckpointRestored &event)
{
    metrics::Shard &s = shard(event.worker);
    s.add(checkpoint_restores_);
    s.add(skipped_instrs_, event.skippedDynInstrs);
}

void
MetricsObserver::onSliceHazard(const SliceHazard &event)
{
    shard(event.worker).add(slice_hazards_);
}

void
MetricsObserver::onCacheHit(const CacheHit &)
{
    // Campaign-scope (serial): the registry is touched directly.
    registry_.add(cache_hits_);
}

void
MetricsObserver::onCacheMiss(const CacheMiss &)
{
    registry_.add(cache_misses_);
}

void
MetricsObserver::onChunkFolded(const ChunkFolded &event)
{
    // Serialized under the engine's progress lock: fold the completing
    // worker's shard so the registry trails the campaign by at most
    // the in-flight chunks.
    registry_.add(chunks_);
    registry_.fold(shard(event.worker));
}

void
MetricsObserver::onJournalCommit(const JournalCommit &event)
{
    registry_.add(journal_commits_);
    registry_.add(journal_bytes_, event.bytes);
}

void
MetricsObserver::onPhaseDone(const PhaseDone &event)
{
    registry_.addGauge(phase_seconds_[static_cast<std::size_t>(
                           event.phase)],
                       event.seconds);
}

void
MetricsObserver::onCampaignEnd(const CampaignEnd &event)
{
    for (metrics::Shard &shard : shards_)
        registry_.fold(shard);
    registry_.add(replayed_sites_, event.stats->replayedSites);
    registry_.add(cache_bytes_, event.stats->cacheBytesRead +
                                    event.stats->cacheBytesWritten);
    registry_.set(sites_per_second_, event.stats->sitesPerSecond);
}

void
LiveProgress::onCampaignBegin(const CampaignBegin &event)
{
    start_ = Clock::now();
    last_emit_ = start_;
    label_ = event.label;
    masked_.store(0, std::memory_order_relaxed);
    sdc_.store(0, std::memory_order_relaxed);
    other_.store(0, std::memory_order_relaxed);
}

void
LiveProgress::onSiteClassified(const SiteClassified &event)
{
    switch (event.outcome) {
      case Outcome::Masked:
        masked_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Outcome::SDC:
        sdc_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        other_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
}

void
LiveProgress::onChunkFolded(const ChunkFolded &event)
{
    Clock::time_point now = Clock::now();
    double since_emit =
        std::chrono::duration<double>(now - last_emit_).count();
    if (since_emit < interval_ && event.sitesDone < event.sitesTotal)
        return;
    last_emit_ = now;

    std::uint64_t masked = masked_.load(std::memory_order_relaxed);
    std::uint64_t sdc = sdc_.load(std::memory_order_relaxed);
    std::uint64_t other = other_.load(std::memory_order_relaxed);
    std::uint64_t done = event.sitesDone;
    double elapsed =
        std::chrono::duration<double>(now - start_).count();
    double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed
                                : 0.0;
    double eta = rate > 0.0 ? static_cast<double>(event.sitesTotal -
                                                  done) /
                                  rate
                            : 0.0;
    double classified =
        static_cast<double>(std::max<std::uint64_t>(
            masked + sdc + other, 1));

    char buf[192];
    std::snprintf(
        buf, sizeof(buf),
        "%llu/%llu sites (%.1f%%) | masked %.1f%% sdc %.1f%% "
        "other %.1f%% | %.0f sites/s | ETA %.0f s",
        static_cast<unsigned long long>(done),
        static_cast<unsigned long long>(event.sitesTotal),
        event.sitesTotal > 0
            ? 100.0 * static_cast<double>(done) /
                  static_cast<double>(event.sitesTotal)
            : 100.0,
        100.0 * static_cast<double>(masked) / classified,
        100.0 * static_cast<double>(sdc) / classified,
        100.0 * static_cast<double>(other) / classified, rate, eta);
    inform(label_, buf);
}

} // namespace fsp::faults
