/**
 * @file
 * Fault-injection outcome classification (paper section II-B): an
 * injected fault is masked (output unchanged), causes silent data
 * corruption (run completes, output wrong), or "other" (crash or hang).
 * The distribution over the three classes is the application's error
 * resilience profile.
 */

#ifndef FSP_FAULTS_OUTCOME_HH
#define FSP_FAULTS_OUTCOME_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fsp::faults {

/** The outcome classes. */
enum class Outcome : std::uint8_t
{
    Masked,
    SDC,
    Other,   ///< crash or hang
    Invalid, ///< site rejected (e.g. dynIndex beyond the golden trace)
};

std::string outcomeName(Outcome outcome);

/**
 * Weighted tally of outcomes; the error resilience profile is the
 * normalised distribution.  Weights default to 1 (plain counting) and
 * carry pruning extrapolation factors otherwise.
 */
class OutcomeDist
{
  public:
    /** Record one experiment with the given weight. */
    void add(Outcome outcome, double weight = 1.0);

    /**
     * Fold weight into a bucket without counting an experiment (used
     * for weight pruned analytically, e.g. predicate bits accounted as
     * masked without injection).
     */
    void addWeight(Outcome outcome, double weight);

    /** Merge another tally into this one. */
    void merge(const OutcomeDist &other);

    /**
     * Total recorded weight across the three resilience classes.
     * Invalid weight is excluded: rejected sites are not experiments
     * and must not dilute the masked/sdc/other profile.
     */
    double total() const { return masked_ + sdc_ + other_; }

    /** Number of add() calls (unweighted run count). */
    std::uint64_t runs() const { return runs_; }

    double weightOf(Outcome outcome) const;

    /** Fraction of total weight in @p outcome; 0 when empty. */
    double fraction(Outcome outcome) const;

    /** {masked, sdc, other} fractions, for distribution distances. */
    std::vector<double> fractions() const;

    /** "masked 62.10% | sdc 30.05% | other 7.85%  (n=...)". */
    std::string summary() const;

  private:
    double masked_ = 0.0;
    double sdc_ = 0.0;
    double other_ = 0.0;
    double invalid_ = 0.0; ///< outside total()/fractions()
    std::uint64_t runs_ = 0;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_OUTCOME_HH
