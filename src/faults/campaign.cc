/**
 * @file
 * Campaign driver implementation.
 */

#include "faults/campaign.hh"

namespace fsp::faults {

CampaignResult
runSiteList(Injector &injector, const std::vector<FaultSite> &sites)
{
    InjectionStats before = injector.stats();
    CampaignResult result;
    for (const auto &site : sites) {
        result.dist.add(injector.inject(site));
        result.runs++;
    }
    result.injection = injector.stats().since(before);
    return result;
}

CampaignResult
runWeightedSiteList(Injector &injector,
                    const std::vector<WeightedSite> &sites)
{
    InjectionStats before = injector.stats();
    CampaignResult result;
    for (const auto &weighted : sites) {
        result.dist.add(injector.inject(weighted.site), weighted.weight);
        result.runs++;
    }
    result.injection = injector.stats().since(before);
    return result;
}

CampaignResult
runRandomCampaign(Injector &injector, const FaultSpace &space,
                  std::size_t runs, Prng &prng)
{
    auto sites = space.sampleSites(runs, prng);
    return runSiteList(injector, sites);
}

} // namespace fsp::faults
