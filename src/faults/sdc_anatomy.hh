/**
 * @file
 * SDC anatomy: *how* an output was silently corrupted, not just *that*
 * it was.
 *
 * The masked/SDC/other split (outcome.hh) treats every silent data
 * corruption alike, but downstream consumers care about the corruption
 * pattern: one wrong element is often tolerable for iterative solvers,
 * a corrupted row/column usually is not, and magnitude decides whether
 * an error survives later reductions.  The classifier here runs over
 * the same OutputSpec diffs the injector already computes, so anatomy
 * never changes a classification -- it only refines SDC.
 *
 * Per-run product: an SdcAnatomyRecord (spatial pattern + log-scale
 * relative-error histogram).  Per-campaign product: an
 * SdcAnatomyProfile aggregating records and ranking static instructions
 * by the failure classes their faults produced (via
 * sim::FaultPlan::appliedStatic).  Both serialize through the campaign
 * journal and the tools' --json output.
 */

#ifndef FSP_FAULTS_SDC_ANATOMY_HH
#define FSP_FAULTS_SDC_ANATOMY_HH

#include <array>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "faults/outcome.hh"
#include "faults/output_spec.hh"
#include "sim/fault.hh"

namespace fsp {
class JsonWriter;
} // namespace fsp

namespace fsp::metrics {
class Registry;
} // namespace fsp::metrics

namespace fsp::faults {

/** Spatial shape of the corrupted elements of an SDC run. */
enum class SdcPattern : std::uint8_t
{
    None,          ///< no corrupted elements (not an SDC)
    SingleElement, ///< exactly one corrupted element
    RowStreak,     ///< a contiguous run within one row
    ColumnStreak,  ///< a contiguous run down one column
    Block,         ///< a dense 2-D rectangle (>= half its bounding box)
    Scattered,     ///< anything else (incl. multi-region corruption)
};

/** Number of SdcPattern values (array sizing). */
inline constexpr std::size_t kNumSdcPatterns = 6;

std::string_view sdcPatternName(SdcPattern pattern);

/**
 * Relative-error magnitude buckets (log scale).  Bucket i holds
 * corrupted elements with relError <= kMagnitudeEdges[i] (first
 * matching bucket); the last bucket is the overflow, including
 * NaN/Inf corruption.
 */
inline constexpr std::size_t kMagnitudeBuckets = 7;
inline constexpr std::array<double, kMagnitudeBuckets - 1>
    kMagnitudeEdges = {1e-6, 1e-4, 1e-2, 1.0, 1e2, 1e6};

/** Bucket index for one element's relative error. */
std::size_t magnitudeBucket(double relError);

/** Human label of one bucket, e.g. "<=1e-4" / ">1e+06". */
std::string_view magnitudeBucketLabel(std::size_t bucket);

/** Anatomy of one SDC run. */
struct SdcAnatomyRecord
{
    SdcPattern pattern = SdcPattern::None;

    /** Corrupted-element count per magnitude bucket (sums to the total
     *  corrupted-element count of the run). */
    std::array<std::uint32_t, kMagnitudeBuckets> magnitude{};

    /** Total corrupted elements across all regions. */
    std::uint64_t
    corruptedElements() const
    {
        std::uint64_t total = 0;
        for (std::uint32_t bucket : magnitude)
            total += bucket;
        return total;
    }

    bool operator==(const SdcAnatomyRecord &other) const = default;
};

/**
 * Per-injection classification detail accompanying the Outcome: which
 * static instruction the fault first corrupted
 * (sim::FaultPlan::appliedStatic) and, for SDC runs, the corruption
 * anatomy.  Round-trips through the campaign journal.
 */
struct InjectionDetail
{
    std::uint32_t staticIndex = sim::kNoStaticIndex;
    bool hasAnatomy = false; ///< anatomy is meaningful (classified SDC)
    SdcAnatomyRecord anatomy;

    bool operator==(const InjectionDetail &other) const = default;
};

/**
 * Classify one run's output diff.  @p golden / @p test are the
 * captured region bytes (captureOutputs order).  Uses exactly the
 * element-match semantics of outputsMatch(), so a run classifies as
 * SdcPattern::None iff outputsMatch() would return true.
 */
SdcAnatomyRecord
classifySdc(const std::vector<OutputRegion> &regions,
            const std::vector<std::vector<std::uint8_t>> &golden,
            const std::vector<std::vector<std::uint8_t>> &test);

/**
 * Campaign-level anatomy aggregate.  Deterministic by construction:
 * the engine folds records serially in site order, and every field is
 * an order-independent sum or a key-ordered map.
 */
class SdcAnatomyProfile
{
  public:
    /** Weighted failure-class tally of one static instruction. */
    struct StaticClassCounts
    {
        double masked = 0.0;
        double sdc = 0.0;
        double other = 0.0;
        std::uint64_t runs = 0;
    };

    /** One entry of the SDC-ranked static-instruction table. */
    struct RankedStatic
    {
        std::uint32_t staticIndex = 0;
        StaticClassCounts counts;
    };

    /**
     * Fold one classified run.  @p staticIndex is the fault plan's
     * appliedStatic (sim::kNoStaticIndex when the fault never fired or
     * is not attributable); @p anatomy may be null for non-SDC runs.
     * Outcome::Invalid runs must never reach the profile.
     */
    void addRun(Outcome outcome, double weight, std::uint32_t staticIndex,
                const SdcAnatomyRecord *anatomy);

    /** Merge another profile (order-independent sums). */
    void merge(const SdcAnatomyProfile &other);

    /** SDC runs folded so far (unweighted). */
    std::uint64_t sdcRuns() const { return sdc_runs_; }

    /** Weighted SDC-pattern tally. */
    double
    patternWeight(SdcPattern pattern) const
    {
        return pattern_weight_[static_cast<std::size_t>(pattern)];
    }

    /** Unweighted SDC-pattern run count. */
    std::uint64_t
    patternRuns(SdcPattern pattern) const
    {
        return pattern_runs_[static_cast<std::size_t>(pattern)];
    }

    /** Summed magnitude histogram over all SDC runs. */
    const std::array<std::uint64_t, kMagnitudeBuckets> &
    magnitude() const
    {
        return magnitude_;
    }

    /** Per-static-instruction tallies, keyed by static index. */
    const std::map<std::uint32_t, StaticClassCounts> &
    byStatic() const
    {
        return by_static_;
    }

    /**
     * Static instructions ranked by weighted SDC contribution
     * (descending; ties by ascending index -- fully deterministic).
     * @p limit 0 returns the full table.
     */
    std::vector<RankedStatic> ranking(std::size_t limit = 0) const;

    /** "patterns: single 12 | row 3 ... " one-line summary. */
    std::string summary() const;

    /**
     * Emit as an "sdc_anatomy" object inside the currently open JSON
     * object: pattern tallies, magnitude histogram, and the top
     * @p rankLimit ranked static instructions.
     */
    void writeJson(JsonWriter &json, std::size_t rankLimit = 10) const;

    /** Export tallies into the metrics registry (serialized context). */
    void exportMetrics(metrics::Registry &registry) const;

  private:
    std::array<double, kNumSdcPatterns> pattern_weight_{};
    std::array<std::uint64_t, kNumSdcPatterns> pattern_runs_{};
    std::array<std::uint64_t, kMagnitudeBuckets> magnitude_{};
    std::map<std::uint32_t, StaticClassCounts> by_static_;
    std::uint64_t sdc_runs_ = 0;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_SDC_ANATOMY_HH
