/**
 * @file
 * Fault-space enumeration (the paper's Equation 1) and uniform random
 * site sampling for baseline campaigns.
 *
 * FaultCoverage = sum over threads t, dynamic instructions i of
 * bit(t, i), where bit(t, i) is the destination-register width of
 * instruction i of thread t (0 for instructions without a destination).
 */

#ifndef FSP_FAULTS_FAULT_SPACE_HH
#define FSP_FAULTS_FAULT_SPACE_HH

#include <cstdint>
#include <vector>

#include "faults/fault_site.hh"
#include "sim/executor.hh"
#include "util/prng.hh"

namespace fsp::faults {

/**
 * The enumerated fault space of one kernel launch: per-thread profiles
 * (iCnt and fault-bit totals) from a single fault-free profiling run,
 * plus the Eq. 1 total.
 */
class FaultSpace
{
  public:
    /**
     * Profile the launch (one fault-free run with per-thread summaries).
     *
     * @param executor configured kernel launch.
     * @param image pristine initialised global memory (copied).
     */
    FaultSpace(const sim::Executor &executor,
               const sim::GlobalMemory &image);

    /** Eq. 1 total number of fault sites. */
    std::uint64_t totalSites() const { return total_sites_; }

    /** Threads in the launch. */
    std::uint64_t threadCount() const { return profiles_.size(); }

    /** Total dynamic instructions across all threads. */
    std::uint64_t totalDynInstrs() const { return total_dyn_; }

    /** Per-thread profiles indexed by global thread id. */
    const std::vector<sim::ThreadProfile> &profiles() const
    {
        return profiles_;
    }

    /**
     * Draw @p count fault sites uniformly at random from the entire
     * space (with replacement), the sampling model of the statistical
     * baseline (paper section II-D).  Internally performs one traced
     * profiling run covering every distinct sampled thread to map
     * bit offsets onto (dynamic instruction, bit) pairs.
     */
    std::vector<FaultSite> sampleSites(std::size_t count, Prng &prng) const;

    /**
     * Enumerate every fault site of one thread (requires a traced run;
     * used for exhaustive per-thread injection in the pruning stages).
     */
    std::vector<FaultSite>
    threadSites(std::uint64_t thread,
                const std::vector<sim::DynRecord> &trace) const;

  private:
    const sim::Executor &executor_;
    const sim::GlobalMemory &image_;
    std::vector<sim::ThreadProfile> profiles_;
    std::vector<std::uint64_t> cumulative_bits_; ///< prefix sums
    std::uint64_t total_sites_ = 0;
    std::uint64_t total_dyn_ = 0;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_FAULT_SPACE_HH
