/**
 * @file
 * Pluggable fault-model strategies.
 *
 * The paper's injector hard-codes one interpretation of a fault site:
 * flip one bit of one destination-register writeback.  A FaultModel
 * generalises that mapping -- it turns the unchanged (thread, dynamic
 * instruction, bit) triple into a sim::FaultPlan of any FaultKind, so
 * the whole campaign stack (site spaces, pruning, the parallel engine,
 * slicing, checkpoints, the journal) keeps trafficking in triples while
 * the *meaning* of a triple becomes a strategy.
 *
 * Contract (see DESIGN.md section 12):
 *  - plan() and validate() must be pure functions of (site, context):
 *    the same inputs always yield the same plan.  All model randomness
 *    (scattered bit choice, memory addresses, activation periods) is
 *    derived from ModelContext::seed and the site via deterministic
 *    mixing, never from mutable generator state.
 *  - Models are immutable after construction and shared const across
 *    campaign workers; clone() exists for callers that need an owning
 *    copy.  No mutable state means no locking.
 *  - footprint() declares the widest architectural state the planned
 *    faults may touch; the fuzz harness asserts that golden state
 *    outside the declared footprint survives every injection.
 *  - identity() (kind plus canonical parameter rendering) is hashed
 *    into the campaign journal header; resuming under a model with a
 *    different identity is rejected (see campaign_journal.hh).
 *  - supportsSlicing()/supportsCheckpoints() veto the injector's
 *    sliced/checkpointed fast paths for models whose faults predate
 *    the target dynamic instruction (e.g. launch-time memory
 *    corruption); such models run full-grid from instruction zero.
 */

#ifndef FSP_FAULTS_FAULT_MODEL_HH
#define FSP_FAULTS_FAULT_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_site.hh"
#include "sim/fault.hh"

namespace fsp::faults {

/** Launch-derived facts a model may consult when planning a fault. */
struct ModelContext
{
    std::uint64_t threads = 0;      ///< launch thread count
    std::uint64_t blockThreads = 0; ///< threads per CTA
    std::uint64_t globalBase = 0;   ///< first mapped global address
    std::uint64_t globalBytes = 0;  ///< allocated global bytes
    std::uint64_t sharedBytes = 0;  ///< per-CTA shared memory bytes
    std::uint64_t seed = 0;         ///< campaign seed for model randomness

    /** Per-thread golden dynamic instruction counts (site validation). */
    const std::vector<std::uint64_t> *goldenICnt = nullptr;
};

/** Widest architectural state a model's faults may corrupt. */
enum class ModelFootprint : std::uint8_t
{
    ThreadLocal,  ///< registers / pc / barrier state of the faulty thread
    CtaLocal,     ///< plus the faulty thread's CTA (shared memory)
    GlobalMemory, ///< global memory visible to the whole grid
};

/** Human-readable footprint name ("thread-local" etc.). */
std::string_view modelFootprintName(ModelFootprint footprint);

/**
 * Strategy mapping fault-site triples to executor fault plans.
 * Implementations are immutable and thread-safe by construction.
 */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    /** Stable model name, e.g. "single-bit" (the --fault-model key). */
    virtual std::string_view kind() const = 0;

    /** Canonical "key=value,..." parameter rendering; "" when none. */
    virtual std::string params() const { return {}; }

    /** "kind(params)" -- the string hashed into the journal header. */
    std::string identity() const;

    /** FNV-1a hash of identity(); stored as the journal's model hash. */
    std::uint64_t identityHash() const;

    /** Owning copy (models are immutable; copies are cheap). */
    virtual std::unique_ptr<FaultModel> clone() const = 0;

    /** Widest state the planned faults may touch. */
    virtual ModelFootprint footprint() const = 0;

    /**
     * May injections under this model use CTA-sliced runs?  Models
     * whose corruption is hazard-guarded or confined to the faulty
     * thread's CTA return true (the default).
     */
    virtual bool supportsSlicing() const { return true; }

    /**
     * May injections resume from golden checkpoints?  True (the
     * default) whenever the fault fires at or after the site's dynamic
     * index, so pre-fault execution is bit-identical to the golden run.
     */
    virtual bool supportsCheckpoints() const { return true; }

    /**
     * Is @p site injectable under this model and launch?  The base
     * implementation enforces the universal rule -- the thread exists
     * and the dynamic index lies within its golden instruction count --
     * and derived models add their own requirements (e.g. the kernel
     * actually has shared memory).  On rejection @p why (if non-null)
     * receives a diagnostic.
     */
    virtual bool validate(const FaultSite &site, const ModelContext &ctx,
                          std::string *why) const;

    /**
     * Map a (validated) site to the fault plan to execute.  Must be
     * deterministic in (site, ctx).
     */
    virtual sim::FaultPlan plan(const FaultSite &site,
                                const ModelContext &ctx) const = 0;
};

/** The paper's model: transient single-bit destination flip. */
std::unique_ptr<FaultModel> defaultFaultModel();

/**
 * Build a model from a spec string: a model name optionally followed
 * by ':' and comma-separated key=value parameters, e.g. "single-bit",
 * "multi-bit:width=3", "intermittent-stuck:period=8".  Returns null
 * and fills @p error on unknown names, unknown keys or bad values.
 */
std::unique_ptr<FaultModel> parseFaultModel(std::string_view spec,
                                            std::string *error);

/** Spec names of every built-in model (for --help and test matrices). */
const std::vector<std::string> &builtinFaultModels();

/** One-line description of a built-in model name ("" if unknown). */
std::string_view faultModelDescription(std::string_view kind);

} // namespace fsp::faults

#endif // FSP_FAULTS_FAULT_MODEL_HH
