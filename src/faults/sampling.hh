/**
 * @file
 * Statistical sample sizing for fault-injection campaigns, following
 * Leveugle et al. (the paper's Equations 2-4): how many randomly drawn
 * fault sites are needed for a target confidence interval and error
 * margin on the masked-output fraction.
 */

#ifndef FSP_FAULTS_SAMPLING_HH
#define FSP_FAULTS_SAMPLING_HH

#include <cstdint>

namespace fsp::faults {

/**
 * Equation 2: required samples from a finite population.
 *
 * n = N / (1 + e^2 * (N-1) / (t^2 * p * (1-p)))
 *
 * @param population N, the number of exhaustive fault sites.
 * @param error_margin e, e.g. 0.03 for +/-3%.
 * @param t_statistic two-sided critical value for the confidence level.
 * @param p program vulnerability factor estimate in (0,1).
 */
double requiredSamplesFinite(double population, double error_margin,
                             double t_statistic, double p);

/**
 * Equation 3: the N -> infinity limit of Equation 2.
 *
 * n = t^2 / e^2 * p * (1-p)
 */
double requiredSamplesInfinite(double error_margin, double t_statistic,
                               double p);

/**
 * Equation 4: the worst case over unknown p (p = 0.5 maximises
 * p*(1-p)), i.e. n = t^2 / (4 e^2), rounded up.
 *
 * @param confidence two-sided confidence level in (0,1), e.g. 0.998.
 * @param error_margin e.
 */
std::uint64_t requiredSamplesWorstCase(double confidence,
                                       double error_margin);

} // namespace fsp::faults

#endif // FSP_FAULTS_SAMPLING_HH
