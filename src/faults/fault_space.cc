/**
 * @file
 * Fault-space enumeration and uniform site sampling.
 */

#include "faults/fault_space.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace fsp::faults {

FaultSpace::FaultSpace(const sim::Executor &executor,
                       const sim::GlobalMemory &image)
    : executor_(executor), image_(image)
{
    sim::GlobalMemory scratch = image;
    sim::TraceOptions opts;
    opts.perThreadProfiles = true;
    sim::RunResult result = executor_.run(scratch, &opts);
    if (result.status != sim::RunStatus::Completed) {
        fatal("fault-free profiling run did not complete: ",
              result.diagnostic);
    }

    profiles_ = std::move(result.trace.profiles);
    total_dyn_ = result.totalDynInstrs;

    cumulative_bits_.reserve(profiles_.size());
    for (const auto &p : profiles_) {
        total_sites_ += p.faultBits;
        cumulative_bits_.push_back(total_sites_);
    }
}

std::vector<FaultSite>
FaultSpace::sampleSites(std::size_t count, Prng &prng) const
{
    FSP_ASSERT(total_sites_ > 0, "cannot sample an empty fault space");

    // Draw global bit offsets, then group by thread so a single traced
    // run can resolve every offset to a (dyn instruction, bit) pair.
    std::vector<std::uint64_t> offsets(count);
    for (auto &offset : offsets)
        offset = prng.below(total_sites_);

    std::map<std::uint64_t, std::vector<std::uint64_t>> per_thread;
    for (std::uint64_t offset : offsets) {
        auto it = std::upper_bound(cumulative_bits_.begin(),
                                   cumulative_bits_.end(), offset);
        auto thread = static_cast<std::uint64_t>(
            std::distance(cumulative_bits_.begin(), it));
        std::uint64_t before =
            thread == 0 ? 0 : cumulative_bits_[thread - 1];
        per_thread[thread].push_back(offset - before);
    }

    sim::TraceOptions opts;
    for (const auto &[thread, local] : per_thread)
        opts.traceThreads.insert(thread);

    sim::GlobalMemory scratch = image_;
    sim::RunResult result = executor_.run(scratch, &opts);
    FSP_ASSERT(result.status == sim::RunStatus::Completed,
               "traced profiling run failed");

    std::vector<FaultSite> sites;
    sites.reserve(count);
    for (auto &[thread, locals] : per_thread) {
        const auto &trace = result.trace.dynTraces.at(thread);
        std::sort(locals.begin(), locals.end());
        // Walk the dynamic trace once per thread, resolving sorted
        // local bit offsets in order.
        std::size_t li = 0;
        std::uint64_t acc = 0;
        for (std::size_t d = 0; d < trace.size() && li < locals.size();
             ++d) {
            std::uint64_t bits = trace[d].destBits;
            while (li < locals.size() && locals[li] < acc + bits) {
                FaultSite site;
                site.thread = thread;
                site.dynIndex = d;
                site.bit = static_cast<std::uint32_t>(locals[li] - acc);
                sites.push_back(site);
                ++li;
            }
            acc += bits;
        }
        FSP_ASSERT(li == locals.size(),
                   "bit offset exceeded thread fault bits");
    }

    // Restore random order (grouping by thread above is an
    // implementation detail, not a sampling bias, but campaigns may
    // stream partial results, so reshuffle).
    prng.shuffle(sites);
    return sites;
}

std::vector<FaultSite>
FaultSpace::threadSites(std::uint64_t thread,
                        const std::vector<sim::DynRecord> &trace) const
{
    std::vector<FaultSite> sites;
    for (std::size_t d = 0; d < trace.size(); ++d) {
        for (std::uint32_t b = 0; b < trace[d].destBits; ++b) {
            FaultSite site;
            site.thread = thread;
            site.dynIndex = d;
            site.bit = b;
            sites.push_back(site);
        }
    }
    return sites;
}

} // namespace fsp::faults
