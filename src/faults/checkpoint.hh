/**
 * @file
 * Temporal checkpoints of the golden run for checkpointed replay.
 *
 * Every injected run executes the golden instruction stream verbatim
 * until the fault's dynamic index fires -- everything before that point
 * is recomputation.  CheckpointStore removes it: while the golden run
 * executes, the store records periodic per-CTA capture points (a
 * StateSnapshot of the CTA's machine state plus a MemoryDelta of the
 * global-memory chunks dirtied so far).  Injector::inject() then
 * restores the latest checkpoint at-or-before the fault's dynamic index
 * and executes forward only, composing with CTA slicing so a late-trace
 * fault in an independent CTA touches a small fraction of the original
 * work.
 *
 * Why replaying from a golden checkpoint is exact: a faulty run is
 * bit-identical to the golden run up to the instruction the fault
 * targets (the only perturbation is the single bit flip).  The
 * checkpoint chosen satisfies state.icntOf(t) <= dynIndex for the
 * fault thread, so the fault instruction is still ahead of the resume
 * point and fires during replay exactly as it would from scratch.  The
 * captured MemoryDelta holds whole 256-byte chunks and may include
 * bytes of other CTAs' regions (chunk bleed); for sliced replay those
 * bytes lie in the CTA's load-hazard set, which both the hazard guard
 * and the output comparison already exclude, and for full-grid replay
 * the deltas of all preceding CTAs are applied first, reproducing the
 * exact golden image at the capture point.
 *
 * Snapshots are copy-on-write page deltas: consecutive capture points
 * of one CTA share every 4 KiB page that did not change between them
 * (see sim::StateSnapshot), so deepening the capture cadence costs
 * memory proportional to what actually changed, not to perCta * state
 * size.  byteSize() reports the deduplicated footprint.
 *
 * The store is immutable after record() and is shared across the
 * parallel campaign's worker clones via shared_ptr; resuming restores
 * pages into the executor's scratch state, never mutating the store.
 */

#ifndef FSP_FAULTS_CHECKPOINT_HH
#define FSP_FAULTS_CHECKPOINT_HH

#include <cstdint>
#include <vector>

#include "sim/executor.hh"
#include "sim/machine_state.hh"
#include "sim/memory.hh"

namespace fsp::faults {

/** Recording cadence for CheckpointStore::record. */
struct CheckpointOptions
{
    /** Target number of capture points per CTA. */
    unsigned perCta = 16;

    /**
     * Minimum dynamic instructions between capture points; CTAs
     * shorter than this get no checkpoints (replaying them from the
     * start is already cheap).
     */
    std::uint64_t minInterval = 256;
};

/** One capture point: CTA machine state + memory written so far. */
struct CtaCheckpoint
{
    sim::StateSnapshot state; ///< COW snapshot of the CTA state
    sim::MemoryDelta delta;   ///< chunks this CTA dirtied by this point
    std::uint64_t ctaDynInstrs = 0; ///< == state.executedDynInstrs()
};

/**
 * Periodic golden-run checkpoints for every CTA of a launch, plus each
 * CTA's final memory delta (needed to reconstruct the pre-CTA memory
 * image for full-grid replay of later CTAs).
 */
class CheckpointStore
{
  public:
    /**
     * Re-execute the golden run CTA by CTA, capturing checkpoints.
     *
     * @param executor the injection executor (budgeted config).
     * @param image pristine initialised memory image.
     * @param goldenICnt per-thread golden dynamic instruction counts
     *        (sets each CTA's capture interval).
     * @param options recording cadence.
     */
    static CheckpointStore record(const sim::Executor &executor,
                                  const sim::GlobalMemory &image,
                                  const std::vector<std::uint64_t> &goldenICnt,
                                  const CheckpointOptions &options = {});

    /**
     * Latest checkpoint of @p cta usable for a fault at @p dynIndex on
     * local thread @p localThread, i.e. the last capture point where
     * that thread had executed at most @p dynIndex instructions.
     * Null when no checkpoint qualifies (resume from the start).
     */
    const CtaCheckpoint *find(std::uint64_t cta,
                              std::uint64_t localThread,
                              std::uint64_t dynIndex) const;

    /** Memory delta of @p cta's complete golden execution. */
    const sim::MemoryDelta &
    finalDelta(std::uint64_t cta) const
    {
        return ctas_[cta].finalDelta;
    }

    /** Dynamic instructions of @p cta's complete golden execution. */
    std::uint64_t
    finalDynInstrs(std::uint64_t cta) const
    {
        return ctas_[cta].finalDynInstrs;
    }

    /** All capture points of one CTA, in execution order. */
    const std::vector<CtaCheckpoint> &
    checkpoints(std::uint64_t cta) const
    {
        return ctas_[cta].checkpoints;
    }

    std::size_t ctaCount() const { return ctas_.size(); }

    /** Capture points across all CTAs. */
    std::size_t totalCheckpoints() const;

    /** True when no CTA has a capture point (all-short kernel). */
    bool empty() const { return totalCheckpoints() == 0; }

    /** Approximate in-memory footprint of the whole store. */
    std::uint64_t byteSize() const;

  private:
    struct PerCta
    {
        std::vector<CtaCheckpoint> checkpoints;
        sim::MemoryDelta finalDelta;
        std::uint64_t finalDynInstrs = 0;
    };

    std::vector<PerCta> ctas_;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_CHECKPOINT_HH
