/**
 * @file
 * Deprecated compatibility shim: the parallel campaign engine was
 * folded into the unified faults::CampaignEngine facade
 * (campaign_engine.hh), which subsumes the serial drivers and adds
 * durable journaled sessions.  Existing code spelling
 * `faults::ParallelCampaign` (and its runSiteList /
 * runWeightedSiteList / runRandomCampaign methods) keeps compiling
 * through this alias; new code should include campaign_engine.hh and
 * use CampaignEngine::run() directly.
 */

#ifndef FSP_FAULTS_PARALLEL_CAMPAIGN_HH
#define FSP_FAULTS_PARALLEL_CAMPAIGN_HH

#include "faults/campaign_engine.hh"

namespace fsp::faults {

/** Deprecated alias; use CampaignEngine. */
using ParallelCampaign = CampaignEngine;

} // namespace fsp::faults

#endif // FSP_FAULTS_PARALLEL_CAMPAIGN_HH
