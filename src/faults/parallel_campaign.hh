/**
 * @file
 * Parallel campaign engine: the multi-worker counterpart of the serial
 * drivers in campaign.hh.
 *
 * Every injection run of a campaign is independent (the injector
 * restores the pristine image before each run), so a campaign shards
 * its site list into fixed chunks, executes the chunks on a thread
 * pool with one private Injector per worker, and records each site's
 * Outcome into its slot of a pre-sized array.  The final tally is then
 * folded *serially in site order*, which makes the result -- run
 * counts and the weighted double accumulation alike -- bit-identical
 * to the serial drivers regardless of worker count, chunk size, or
 * scheduling.
 */

#ifndef FSP_FAULTS_PARALLEL_CAMPAIGN_HH
#define FSP_FAULTS_PARALLEL_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "faults/campaign.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "util/prng.hh"
#include "util/thread_pool.hh"

namespace fsp::faults {

/** Snapshot handed to a campaign progress callback. */
struct CampaignProgress
{
    std::uint64_t sitesDone = 0;
    std::uint64_t sitesTotal = 0;
};

/** Parallel campaign knobs. */
struct CampaignOptions
{
    /** Worker threads; 0 selects ThreadPool::defaultWorkerCount(). */
    unsigned workers = 0;

    /** Sites per chunk; 0 derives one from the list and worker count. */
    std::size_t chunkSize = 0;

    /**
     * Invoked after every completed chunk (from a worker thread, under
     * the engine's progress lock -- keep it cheap).
     */
    std::function<void(const CampaignProgress &)> progressCallback;

    /**
     * Permit the sliced injection path when the kernel's CTAs are
     * independent.  false forces full-grid runs on every worker
     * (useful for A/B validation and benchmarking).
     */
    bool allowSlicing = true;

    /**
     * Permit checkpointed temporal replay.  false skips checkpoint
     * recording (when the engine constructs its own prototype) and
     * forces every worker to execute injections from instruction zero
     * (the A/B switch behind fsp/resilience_report --no-checkpoints).
     */
    bool allowCheckpoints = true;
};

/** Throughput report for the engine's most recent campaign. */
struct CampaignStats
{
    unsigned workers = 0;
    std::size_t chunkSize = 0;
    std::uint64_t chunks = 0;
    std::uint64_t sites = 0;
    std::vector<std::uint64_t> perWorkerRuns; ///< runs executed per worker
    double elapsedSeconds = 0.0;
    double sitesPerSecond = 0.0;
    InjectionStats injection; ///< summed over workers, this campaign only

    /** One-line human-readable summary for logs. */
    std::string summary() const;
};

/**
 * A reusable parallel campaign engine for one kernel launch.
 *
 * Construction performs the golden run once (via a prototype Injector)
 * and clones it per worker; the engine can then run any number of
 * campaigns.  Results are guaranteed identical to campaign.hh's serial
 * drivers (see the determinism suite in tests/test_parallel_campaign).
 */
class ParallelCampaign
{
  public:
    /** Mirror of Injector's constructor; performs the golden run. */
    ParallelCampaign(const sim::Program &program,
                     const sim::LaunchConfig &config,
                     const sim::GlobalMemory &image,
                     std::vector<OutputRegion> outputs,
                     CampaignOptions options = {});

    /**
     * Build from an existing injector whose golden state is simply
     * cloned -- no additional golden run.
     */
    ParallelCampaign(const Injector &prototype,
                     CampaignOptions options = {});

    /** Parallel variant of faults::runSiteList. */
    CampaignResult runSiteList(const std::vector<FaultSite> &sites);

    /** Parallel variant of faults::runWeightedSiteList. */
    CampaignResult
    runWeightedSiteList(const std::vector<WeightedSite> &sites);

    /**
     * Parallel variant of faults::runRandomCampaign.  Sites are drawn
     * by the caller's @p prng exactly as in the serial driver (the
     * generator advances identically), then injected in parallel.
     */
    CampaignResult runRandomCampaign(const FaultSpace &space,
                                     std::size_t runs, Prng &prng);

    unsigned workerCount() const { return pool_.workerCount(); }

    /** Do the workers' injectors use the sliced path? */
    bool slicingActive() const { return injectors_[0]->slicingActive(); }

    /** Do the workers' injectors resume from checkpoints? */
    bool
    checkpointsActive() const
    {
        return injectors_[0]->checkpointsActive();
    }

    /** The workers' shared CTA-independence decision. */
    const SlicingPlan &
    slicingPlan() const
    {
        return injectors_[0]->slicingPlan();
    }

    /** Injection runs performed so far, summed over all workers. */
    std::uint64_t runsPerformed() const;

    /** Throughput/worker report for the most recent campaign. */
    const CampaignStats &lastStats() const { return stats_; }

  private:
    /** Chunk-local processing key: (cta, thread, dynIndex). */
    using SiteKey = std::array<std::uint64_t, 3>;

    /**
     * Shard [0, count) into chunks, classify every site via
     * @p outcomeOf(index, injector) on the pool, and return the
     * outcomes indexed by site.  When @p keyOf is provided, each chunk
     * processes its sites in ascending key order -- successive sites
     * then share a CTA checkpoint, maximizing replay locality.  The
     * outcome array (and thus the fold) is indexed by the original
     * site position, so processing order never affects results.
     */
    std::vector<Outcome>
    classifySites(std::size_t count,
                  const std::function<Outcome(std::size_t, Injector &)>
                      &outcomeOf,
                  const std::function<SiteKey(std::size_t)> &keyOf = {});

    /** Key function ordering a concrete site list for checkpoint reuse. */
    std::function<SiteKey(std::size_t)>
    siteOrderKey(const std::vector<FaultSite> &sites) const;

    CampaignOptions options_;
    std::vector<std::unique_ptr<Injector>> injectors_; ///< one per worker
    ThreadPool pool_;
    CampaignStats stats_;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_PARALLEL_CAMPAIGN_HH
