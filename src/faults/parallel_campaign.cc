/**
 * @file
 * Parallel campaign engine implementation.
 */

#include "faults/parallel_campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/logging.hh"

namespace fsp::faults {

std::string
CampaignStats::summary() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%llu sites in %.3f s (%.0f sites/s, %u workers, "
                  "chunk %zu)",
                  static_cast<unsigned long long>(sites),
                  elapsedSeconds, sitesPerSecond, workers, chunkSize);
    std::string text = buf;
    if (injection.slicedRuns > 0) {
        std::snprintf(buf, sizeof(buf),
                      ", sliced %llu/%llu (%llu hazard fallbacks)",
                      static_cast<unsigned long long>(injection.slicedRuns),
                      static_cast<unsigned long long>(injection.injections),
                      static_cast<unsigned long long>(
                          injection.hazardFallbacks));
        text += buf;
    }
    if (injection.checkpointRestores > 0) {
        std::snprintf(
            buf, sizeof(buf),
            ", ckpt-restores %llu (skipped %llu instrs)",
            static_cast<unsigned long long>(injection.checkpointRestores),
            static_cast<unsigned long long>(injection.skippedDynInstrs));
        text += buf;
    }
    return text;
}

namespace {

/** Resolve the worker count an options struct asks for. */
unsigned
resolveWorkers(const CampaignOptions &options)
{
    return options.workers > 0 ? options.workers
                               : ThreadPool::defaultWorkerCount();
}

/** Resolve the chunk size: explicit, or ~4 chunks per worker. */
std::size_t
resolveChunkSize(const CampaignOptions &options, std::size_t sites,
                 unsigned workers)
{
    if (options.chunkSize > 0)
        return options.chunkSize;
    std::size_t target_chunks = static_cast<std::size_t>(workers) * 4;
    return std::max<std::size_t>(1, (sites + target_chunks - 1) /
                                        target_chunks);
}

/** Prototype-injector knobs implied by the campaign options. */
InjectorOptions
injectorOptionsFor(const CampaignOptions &options)
{
    InjectorOptions injector_options;
    injector_options.checkpoints = options.allowCheckpoints;
    return injector_options;
}

} // namespace

ParallelCampaign::ParallelCampaign(const sim::Program &program,
                                   const sim::LaunchConfig &config,
                                   const sim::GlobalMemory &image,
                                   std::vector<OutputRegion> outputs,
                                   CampaignOptions options)
    // Pass `options` by copy rather than move: the Injector temporary
    // also reads it (injectorOptionsFor) and argument evaluation order
    // is unspecified.
    : ParallelCampaign(
          Injector(program, config, image, std::move(outputs),
                   injectorOptionsFor(options)),
          options)
{
}

ParallelCampaign::ParallelCampaign(const Injector &prototype,
                                   CampaignOptions options)
    : options_(std::move(options)), pool_(resolveWorkers(options_))
{
    injectors_.reserve(pool_.workerCount());
    for (unsigned i = 0; i < pool_.workerCount(); ++i) {
        injectors_.push_back(prototype.clone());
        if (!options_.allowSlicing)
            injectors_.back()->setSlicingEnabled(false);
        if (!options_.allowCheckpoints)
            injectors_.back()->setCheckpointsEnabled(false);
    }
}

std::uint64_t
ParallelCampaign::runsPerformed() const
{
    std::uint64_t total = 0;
    for (const auto &injector : injectors_)
        total += injector->runsPerformed();
    return total;
}

std::function<ParallelCampaign::SiteKey(std::size_t)>
ParallelCampaign::siteOrderKey(const std::vector<FaultSite> &sites) const
{
    const std::uint64_t block_threads =
        injectors_[0]->executor().config().block.count();
    return [&sites, block_threads](std::size_t i) -> SiteKey {
        const FaultSite &site = sites[i];
        return {site.thread / block_threads, site.thread, site.dynIndex};
    };
}

std::vector<Outcome>
ParallelCampaign::classifySites(
    std::size_t count,
    const std::function<Outcome(std::size_t, Injector &)> &outcomeOf,
    const std::function<SiteKey(std::size_t)> &keyOf)
{
    unsigned workers = pool_.workerCount();
    std::size_t chunk_size = resolveChunkSize(options_, count, workers);
    std::size_t chunks =
        count > 0 ? (count + chunk_size - 1) / chunk_size : 0;

    stats_ = CampaignStats{};
    stats_.workers = workers;
    stats_.chunkSize = chunk_size;
    stats_.chunks = chunks;
    stats_.sites = count;
    stats_.perWorkerRuns.assign(workers, 0);

    std::vector<Outcome> outcomes(count);
    std::mutex progress_mutex;
    std::uint64_t sites_done = 0;

    std::vector<InjectionStats> before;
    before.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        before.push_back(injectors_[w]->stats());

    auto start = std::chrono::steady_clock::now();
    pool_.parallelFor(chunks, [&](std::size_t chunk, unsigned worker) {
        std::size_t begin = chunk * chunk_size;
        std::size_t end = std::min(begin + chunk_size, count);
        Injector &injector = *injectors_[worker];

        // Process the chunk in (cta, thread, dynIndex) order so
        // consecutive sites resume from the same checkpoint; outcomes
        // land at their original index, so results are unaffected.
        std::vector<std::size_t> order(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            order[i - begin] = i;
        if (keyOf) {
            std::sort(order.begin(), order.end(),
                      [&keyOf](std::size_t a, std::size_t b) {
                          return keyOf(a) < keyOf(b);
                      });
        }
        for (std::size_t i : order)
            outcomes[i] = outcomeOf(i, injector);

        std::lock_guard<std::mutex> lock(progress_mutex);
        stats_.perWorkerRuns[worker] += end - begin;
        sites_done += end - begin;
        if (options_.progressCallback)
            options_.progressCallback({sites_done, count});
    });
    auto end = std::chrono::steady_clock::now();

    for (unsigned w = 0; w < workers; ++w)
        stats_.injection.merge(injectors_[w]->stats().since(before[w]));

    stats_.elapsedSeconds =
        std::chrono::duration<double>(end - start).count();
    stats_.sitesPerSecond =
        stats_.elapsedSeconds > 0.0
            ? static_cast<double>(count) / stats_.elapsedSeconds
            : 0.0;
    return outcomes;
}

CampaignResult
ParallelCampaign::runSiteList(const std::vector<FaultSite> &sites)
{
    auto outcomes = classifySites(
        sites.size(),
        [&](std::size_t i, Injector &injector) {
            return injector.inject(sites[i]);
        },
        siteOrderKey(sites));

    // Serial fold in site order: identical to faults::runSiteList.
    CampaignResult result;
    for (Outcome outcome : outcomes) {
        result.dist.add(outcome);
        result.runs++;
    }
    result.injection = stats_.injection;
    inform("parallel campaign: ", stats_.summary());
    return result;
}

CampaignResult
ParallelCampaign::runWeightedSiteList(
    const std::vector<WeightedSite> &sites)
{
    const std::uint64_t block_threads =
        injectors_[0]->executor().config().block.count();
    auto outcomes = classifySites(
        sites.size(),
        [&](std::size_t i, Injector &injector) {
            return injector.inject(sites[i].site);
        },
        [&sites, block_threads](std::size_t i) -> SiteKey {
            const FaultSite &site = sites[i].site;
            return {site.thread / block_threads, site.thread,
                    site.dynIndex};
        });

    // Serial fold in site order: the double accumulation happens in
    // exactly the order faults::runWeightedSiteList performs it, so
    // the weighted tally is bit-identical despite fp non-associativity.
    CampaignResult result;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        result.dist.add(outcomes[i], sites[i].weight);
        result.runs++;
    }
    result.injection = stats_.injection;
    inform("parallel campaign (weighted): ", stats_.summary());
    return result;
}

CampaignResult
ParallelCampaign::runRandomCampaign(const FaultSpace &space,
                                    std::size_t runs, Prng &prng)
{
    auto sites = space.sampleSites(runs, prng);
    return runSiteList(sites);
}

} // namespace fsp::faults
