/**
 * @file
 * Implementation of Equations 2-4.
 */

#include "faults/sampling.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace fsp::faults {

double
requiredSamplesFinite(double population, double error_margin,
                      double t_statistic, double p)
{
    FSP_ASSERT(population >= 1.0, "population must be positive");
    FSP_ASSERT(error_margin > 0.0, "error margin must be positive");
    FSP_ASSERT(p > 0.0 && p < 1.0, "p must be in (0,1)");
    double denom = 1.0 + error_margin * error_margin * (population - 1.0) /
                             (t_statistic * t_statistic * p * (1.0 - p));
    return population / denom;
}

double
requiredSamplesInfinite(double error_margin, double t_statistic, double p)
{
    FSP_ASSERT(error_margin > 0.0, "error margin must be positive");
    FSP_ASSERT(p > 0.0 && p < 1.0, "p must be in (0,1)");
    return t_statistic * t_statistic / (error_margin * error_margin) * p *
           (1.0 - p);
}

std::uint64_t
requiredSamplesWorstCase(double confidence, double error_margin)
{
    double t = normalTwoSidedCritical(confidence);
    double n = t * t / (4.0 * error_margin * error_margin);
    return static_cast<std::uint64_t>(std::ceil(n));
}

} // namespace fsp::faults
