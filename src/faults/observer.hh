/**
 * @file
 * Campaign observability: the CampaignObserver event interface and the
 * stock observers built on it.
 *
 * The engine emits typed events through one interface and everything
 * -- the metrics bridge, live progress reporting, the service's
 * progress frames -- is an observer composed into an ObserverList.
 *
 * Threading contract (one rule per event, stated on each struct):
 *
 *  - Worker-thread events (SiteClassified, CheckpointRestored,
 *    SliceHazard) fire concurrently from campaign workers with NO
 *    synchronization; they carry the worker id so an observer can keep
 *    worker-private state (see MetricsObserver's shards).
 *  - Fold-point events (ChunkFolded, JournalCommit) fire from worker
 *    threads but under the engine's progress lock -- serialized, in
 *    chunk completion order.
 *  - Campaign-scope events (CampaignBegin, CacheHit, CacheMiss,
 *    PhaseDone, CampaignEnd) fire on the thread that called
 *    CampaignEngine::run(), outside any parallel section.
 *
 * Observers must never mutate campaign state; the engine's results are
 * bit-identical with or without observers attached (enforced by
 * tests/test_metrics.cc).
 */

#ifndef FSP_FAULTS_OBSERVER_HH
#define FSP_FAULTS_OBSERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "faults/fault_site.hh"
#include "faults/outcome.hh"
#include "util/metrics.hh"

namespace fsp::faults {

struct CampaignStats;

/** The engine's campaign phases, in execution order. */
enum class CampaignPhase : std::uint8_t
{
    Replay, ///< journal open + outcome replay
    Inject, ///< parallel classification
    Fold,   ///< serial outcome fold + footer
};

/** Lower-case phase name ("replay"/"inject"/"fold"). */
const char *campaignPhaseName(CampaignPhase phase);

/**
 * Event interface for one campaign engine.  Default implementations
 * ignore every event, so observers override only what they consume.
 * The observer must outlive every engine run it is attached to.
 */
class CampaignObserver
{
  public:
    virtual ~CampaignObserver() = default;

    /** Campaign-scope: a run() is starting (before journal replay). */
    struct CampaignBegin
    {
        const char *label;        ///< engine's campaign label
        std::uint64_t sitesTotal; ///< full campaign size
        unsigned workers;
        bool journaled; ///< a journal is attached to this run
    };
    virtual void onCampaignBegin(const CampaignBegin &) {}

    /** Worker-thread: one site was injected and classified. */
    struct SiteClassified
    {
        const FaultSite *site;
        Outcome outcome;
        double seconds; ///< wall time of this injection run
        unsigned worker;
    };
    virtual void onSiteClassified(const SiteClassified &) {}

    /** Worker-thread: an injection resumed from a golden checkpoint. */
    struct CheckpointRestored
    {
        std::uint64_t cta;
        std::uint64_t skippedDynInstrs; ///< golden instrs not re-executed
        unsigned worker;
    };
    virtual void onCheckpointRestored(const CheckpointRestored &) {}

    /** Worker-thread: a sliced run escaped to the full-grid fallback. */
    struct SliceHazard
    {
        std::uint64_t cta;
        unsigned worker;
    };
    virtual void onSliceHazard(const SliceHazard &) {}

    /**
     * Campaign-scope: a pending site's outcome was replayed from the
     * section cache (fires during the replay phase, serially).
     */
    struct CacheHit
    {
        const FaultSite *site;
        Outcome outcome;
        std::uint64_t sectionHash; ///< cache bucket that satisfied it
    };
    virtual void onCacheHit(const CacheHit &) {}

    /**
     * Campaign-scope: a pending site missed the section cache (either
     * no entry, or the site is outside the section index) and will be
     * injected.
     */
    struct CacheMiss
    {
        const FaultSite *site;
        std::uint64_t sectionHash; ///< 0 when the site was un-indexed
    };
    virtual void onCacheMiss(const CacheMiss &) {}

    /** Fold-point: a chunk's outcomes were folded into the campaign. */
    struct ChunkFolded
    {
        std::uint64_t chunk;        ///< chunk index within this run
        std::uint64_t sitesInChunk;
        std::uint64_t sitesDone;    ///< classified so far, this run
        std::uint64_t sitesTotal;   ///< pending sites of this run
        unsigned worker;
    };
    virtual void onChunkFolded(const ChunkFolded &) {}

    /** Fold-point: journal records were written and fsync'd. */
    struct JournalCommit
    {
        std::uint64_t records; ///< records made durable by this commit
        std::uint64_t bytes;   ///< bytes written by this commit
        bool footer;           ///< this commit sealed the campaign
    };
    virtual void onJournalCommit(const JournalCommit &) {}

    /** Campaign-scope: a phase finished. */
    struct PhaseDone
    {
        CampaignPhase phase;
        double seconds;
    };
    virtual void onPhaseDone(const PhaseDone &) {}

    /** Campaign-scope: the run completed (stats are final). */
    struct CampaignEnd
    {
        const CampaignStats *stats;
    };
    virtual void onCampaignEnd(const CampaignEnd &) {}
};

/**
 * Fan-out: forwards every event to each added observer in order.
 * Composition tool for the engine and the tools (metrics + live
 * progress).
 */
class ObserverList final : public CampaignObserver
{
  public:
    void
    add(CampaignObserver *observer)
    {
        if (observer)
            observers_.push_back(observer);
    }

    bool empty() const { return observers_.empty(); }

    void onCampaignBegin(const CampaignBegin &event) override;
    void onSiteClassified(const SiteClassified &event) override;
    void onCheckpointRestored(const CheckpointRestored &event) override;
    void onSliceHazard(const SliceHazard &event) override;
    void onCacheHit(const CacheHit &event) override;
    void onCacheMiss(const CacheMiss &event) override;
    void onChunkFolded(const ChunkFolded &event) override;
    void onJournalCommit(const JournalCommit &event) override;
    void onPhaseDone(const PhaseDone &event) override;
    void onCampaignEnd(const CampaignEnd &event) override;

  private:
    std::vector<CampaignObserver *> observers_;
};

/**
 * Bridges campaign events into a metrics::Registry: outcome counters,
 * per-outcome injection-latency histograms, phase timings, journal and
 * checkpoint/hazard counters.  Hot worker-thread events land in
 * worker-private metrics shards folded at chunk boundaries (and at
 * campaign end), so the folded totals are deterministic and the hot
 * path never takes a lock.
 */
class MetricsObserver final : public CampaignObserver
{
  public:
    explicit MetricsObserver(metrics::Registry &registry);

    void onCampaignBegin(const CampaignBegin &event) override;
    void onSiteClassified(const SiteClassified &event) override;
    void onCheckpointRestored(const CheckpointRestored &event) override;
    void onSliceHazard(const SliceHazard &event) override;
    void onCacheHit(const CacheHit &event) override;
    void onCacheMiss(const CacheMiss &event) override;
    void onChunkFolded(const ChunkFolded &event) override;
    void onJournalCommit(const JournalCommit &event) override;
    void onPhaseDone(const PhaseDone &event) override;
    void onCampaignEnd(const CampaignEnd &event) override;

  private:
    metrics::Shard &shard(unsigned worker);

    metrics::Registry &registry_;
    std::vector<metrics::Shard> shards_; ///< one per worker, lazily sized

    /** Per-outcome ids, indexed by static_cast<size_t>(Outcome). */
    metrics::CounterId site_outcomes_[4];
    metrics::HistogramId latency_[4];

    metrics::CounterId campaigns_;
    metrics::CounterId scheduled_sites_;
    metrics::CounterId replayed_sites_;
    metrics::CounterId chunks_;
    metrics::CounterId journal_commits_;
    metrics::CounterId journal_bytes_;
    metrics::CounterId checkpoint_restores_;
    metrics::CounterId skipped_instrs_;
    metrics::CounterId slice_hazards_;
    metrics::CounterId cache_hits_;
    metrics::CounterId cache_misses_;
    metrics::CounterId cache_bytes_;
    metrics::GaugeId phase_seconds_[3]; ///< indexed by CampaignPhase
    metrics::GaugeId workers_;
    metrics::GaugeId sites_per_second_;
};

/**
 * Periodic human-readable progress: at most one inform() line per
 * interval from the chunk fold point, showing completion, the running
 * outcome mix, throughput, and an ETA.  An interval of 0 reports at
 * every chunk (useful in tests); the observer is silent until the
 * first chunk of a campaign folds.
 */
class LiveProgress final : public CampaignObserver
{
  public:
    explicit LiveProgress(double intervalSeconds)
        : interval_(intervalSeconds)
    {
    }

    void onCampaignBegin(const CampaignBegin &event) override;
    void onSiteClassified(const SiteClassified &event) override;
    void onChunkFolded(const ChunkFolded &event) override;

  private:
    using Clock = std::chrono::steady_clock;

    double interval_;
    Clock::time_point start_{};
    Clock::time_point last_emit_{};
    const char *label_ = "";
    /** Worker-thread tallies; relaxed atomics, read at fold points. */
    std::atomic<std::uint64_t> masked_{0};
    std::atomic<std::uint64_t> sdc_{0};
    std::atomic<std::uint64_t> other_{0};
};

} // namespace fsp::faults

#endif // FSP_FAULTS_OBSERVER_HH
