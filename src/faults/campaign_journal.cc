/**
 * @file
 * Campaign journal implementation.  POSIX I/O by design: durability
 * comes from one write() + fsync() per chunk, and the reader parses a
 * whole-file snapshot so validation sees exactly what a restarted
 * process would.
 */

#include "faults/campaign_journal.hh"

#include <bit>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/logging.hh"

namespace fsp::faults {

namespace {

constexpr char kMagic[8] = {'F', 'S', 'P', 'J', 'N', 'L', '0', '3'};
constexpr std::uint64_t kFooterSentinel = ~std::uint64_t{0};
constexpr std::uint64_t kShardSentinel = ~std::uint64_t{0} - 1;
constexpr std::uint64_t kSectionSentinel = ~std::uint64_t{0} - 2;

struct JournalHeader
{
    char magic[8];
    std::uint64_t headerHash;
    std::uint64_t siteCount;
    std::uint64_t modelHash; ///< FaultModel::identityHash()
    std::uint64_t checksum;  ///< hash of every preceding field
};
static_assert(sizeof(JournalHeader) == 40, "header layout drifted");

/** Record flag bits. */
constexpr std::uint8_t kRecordHasAnatomy = 0x01;
constexpr std::uint8_t kRecordFromCache = 0x02; ///< section-cache replay
constexpr std::uint8_t kRecordFlagMask =
    kRecordHasAnatomy | kRecordFromCache;

struct JournalRecord
{
    std::uint64_t siteIndex;
    std::uint32_t outcome;
    std::uint32_t staticIndex; ///< InjectionDetail::staticIndex
    std::uint8_t pattern;      ///< SdcPattern (valid with kRecordHasAnatomy)
    std::uint8_t flags;        ///< kRecordHasAnatomy
    std::uint16_t pad0;
    std::uint32_t pad1;
    std::uint32_t magnitude[kMagnitudeBuckets]; ///< anatomy histogram
    std::uint32_t checksum; ///< hash of headerHash + every field above
};
static_assert(sizeof(JournalRecord) == 56, "record layout drifted");

/** Shard extension block, sealed right after the header (see ShardInfo). */
struct JournalShardExt
{
    std::uint64_t sentinel; ///< kShardSentinel, never a site index
    std::uint64_t campaignHash;
    std::uint64_t siteOffset;
    std::uint64_t campaignSites;
    std::uint32_t shardIndex;
    std::uint32_t shardCount;
    std::uint64_t checksum; ///< hash of headerHash + every field above
};
static_assert(sizeof(JournalShardExt) == 48, "shard ext layout drifted");

/** Per-section summary block (see JournalSectionSummary). */
struct JournalSectionBlock
{
    std::uint64_t sentinel; ///< kSectionSentinel, never a site index
    std::uint64_t sectionHash;
    std::uint64_t tailHash;
    std::uint64_t thread;
    std::uint32_t firstRecord;
    std::uint32_t recordCount;
    std::uint32_t sites;
    std::uint32_t cachedSites;
    std::uint32_t outcomes[4];
    std::uint32_t sdcPatterns[kNumSdcPatterns];
    std::uint64_t checksum; ///< hash of headerHash + every field above
};
static_assert(sizeof(JournalSectionBlock) == 96,
              "section block layout drifted");

struct JournalFooter
{
    std::uint64_t sentinel; ///< kFooterSentinel, never a site index
    double replaySeconds;
    double injectSeconds;
    double foldSeconds;
    double sitesPerSecond;
    std::uint64_t sitesDone;
    std::uint32_t workers;
    std::uint32_t checksum; ///< hash of every preceding field
};
static_assert(sizeof(JournalFooter) == 56, "footer layout drifted");

std::uint64_t
headerChecksum(const JournalHeader &header)
{
    JournalHasher hasher;
    hasher.update(header.magic, sizeof(header.magic));
    hasher.update(header.headerHash);
    hasher.update(header.siteCount);
    hasher.update(header.modelHash);
    return hasher.digest();
}

std::uint32_t
recordChecksum(std::uint64_t headerHash, const JournalRecord &record)
{
    JournalHasher hasher;
    hasher.update(headerHash);
    hasher.update(record.siteIndex);
    hasher.update(std::uint64_t{record.outcome});
    hasher.update(std::uint64_t{record.staticIndex});
    hasher.update(std::uint64_t{record.pattern});
    hasher.update(std::uint64_t{record.flags});
    for (std::uint32_t bucket : record.magnitude)
        hasher.update(std::uint64_t{bucket});
    return static_cast<std::uint32_t>(hasher.digest());
}

std::uint64_t
shardExtChecksum(std::uint64_t headerHash, const JournalShardExt &ext)
{
    JournalHasher hasher;
    hasher.update(headerHash);
    hasher.update(ext.sentinel);
    hasher.update(ext.campaignHash);
    hasher.update(ext.siteOffset);
    hasher.update(ext.campaignSites);
    hasher.update(std::uint64_t{ext.shardIndex});
    hasher.update(std::uint64_t{ext.shardCount});
    return hasher.digest();
}

std::uint64_t
sectionBlockChecksum(std::uint64_t headerHash,
                     const JournalSectionBlock &block)
{
    JournalHasher hasher;
    hasher.update(headerHash);
    hasher.update(block.sentinel);
    hasher.update(block.sectionHash);
    hasher.update(block.tailHash);
    hasher.update(block.thread);
    hasher.update(std::uint64_t{block.firstRecord});
    hasher.update(std::uint64_t{block.recordCount});
    hasher.update(std::uint64_t{block.sites});
    hasher.update(std::uint64_t{block.cachedSites});
    for (std::uint32_t tally : block.outcomes)
        hasher.update(std::uint64_t{tally});
    for (std::uint32_t tally : block.sdcPatterns)
        hasher.update(std::uint64_t{tally});
    return hasher.digest();
}

std::uint32_t
footerChecksum(std::uint64_t headerHash, const JournalFooter &footer)
{
    JournalHasher hasher;
    hasher.update(headerHash);
    hasher.update(footer.sentinel);
    hasher.update(footer.replaySeconds);
    hasher.update(footer.injectSeconds);
    hasher.update(footer.foldSeconds);
    hasher.update(footer.sitesPerSecond);
    hasher.update(footer.sitesDone);
    hasher.update(std::uint64_t{footer.workers});
    return static_cast<std::uint32_t>(hasher.digest());
}

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    throw JournalError(what + " '" + path + "': " + std::strerror(errno));
}

/** "0x1234abcd" -- hashes and checksums in diagnostics. */
std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/**
 * Diagnostics name the journal, the byte offset of the offending
 * entry, and (for hash mismatches) the expected-vs-found values, so
 * the corrupt shard of an N-shard campaign identifies itself.
 */
std::string
journalAt(const std::string &path, std::size_t offset)
{
    return "journal '" + path + "' (byte " + std::to_string(offset) + ")";
}

/** Read the whole file through @p fd (position is left undefined). */
std::vector<std::uint8_t>
readWholeFile(int fd, const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    if (::lseek(fd, 0, SEEK_SET) < 0)
        throwErrno("cannot seek journal", path);
    std::uint8_t buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("cannot read journal", path);
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), buf, buf + n);
    }
    return bytes;
}

} // namespace

void
JournalHasher::update(const void *bytes, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    for (std::size_t i = 0; i < size; ++i) {
        state_ ^= p[i];
        state_ *= 0x100000001b3ULL;
    }
}

void
JournalHasher::update(std::string_view text)
{
    // Fold the length in first so "ab","c" and "a","bc" differ.
    update(static_cast<std::uint64_t>(text.size()));
    update(text.data(), text.size());
}

void
JournalHasher::update(std::uint64_t value)
{
    update(&value, sizeof(value));
}

void
JournalHasher::update(double value)
{
    update(std::bit_cast<std::uint64_t>(value));
}

std::uint64_t
journalHeaderHash(const JournalKey &key, std::size_t count,
                  const std::function<const FaultSite &(std::size_t)> &siteAt,
                  const std::function<double(std::size_t)> &weightAt)
{
    JournalHasher hasher;
    hasher.update(key.tag);
    hasher.update(key.seed);
    hasher.update(static_cast<std::uint64_t>(count));
    for (std::size_t i = 0; i < count; ++i) {
        const FaultSite &site = siteAt(i);
        hasher.update(site.thread);
        hasher.update(site.dynIndex);
        hasher.update(std::uint64_t{site.bit});
        hasher.update(weightAt(i));
    }
    return hasher.digest();
}

std::uint64_t
journalHeaderHash(const JournalKey &key,
                  const std::vector<WeightedSite> &sites)
{
    return journalHeaderHash(
        key, sites.size(),
        [&sites](std::size_t i) -> const FaultSite & {
            return sites[i].site;
        },
        [&sites](std::size_t i) { return sites[i].weight; });
}

std::uint64_t
journalHeaderHash(const JournalKey &key,
                  const std::vector<FaultSite> &sites)
{
    return journalHeaderHash(
        key, sites.size(),
        [&sites](std::size_t i) -> const FaultSite & { return sites[i]; },
        [](std::size_t) { return 1.0; });
}

CampaignJournal::CampaignJournal(std::string path, int fd,
                                 std::uint64_t headerHash)
    : path_(std::move(path)), fd_(fd), header_hash_(headerHash)
{
}

CampaignJournal::CampaignJournal(CampaignJournal &&other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_),
      header_hash_(other.header_hash_),
      pending_(std::move(other.pending_)),
      pending_records_(other.pending_records_),
      committed_(other.committed_)
{
    other.fd_ = -1;
}

CampaignJournal &
CampaignJournal::operator=(CampaignJournal &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        path_ = std::move(other.path_);
        fd_ = other.fd_;
        header_hash_ = other.header_hash_;
        pending_ = std::move(other.pending_);
        pending_records_ = other.pending_records_;
        committed_ = other.committed_;
        other.fd_ = -1;
    }
    return *this;
}

CampaignJournal::~CampaignJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

CampaignJournal
CampaignJournal::create(const std::string &path, std::uint64_t headerHash,
                        std::uint64_t modelHash, std::uint64_t siteCount,
                        const ShardInfo *shard)
{
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throwErrno("cannot create journal", path);
    CampaignJournal journal(path, fd, headerHash);

    JournalHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.headerHash = headerHash;
    header.siteCount = siteCount;
    header.modelHash = modelHash;
    header.checksum = headerChecksum(header);
    journal.writeAll(&header, sizeof(header));
    if (shard) {
        JournalShardExt ext{};
        ext.sentinel = kShardSentinel;
        ext.campaignHash = shard->campaignHash;
        ext.siteOffset = shard->siteOffset;
        ext.campaignSites = shard->campaignSites;
        ext.shardIndex = shard->shardIndex;
        ext.shardCount = shard->shardCount;
        ext.checksum = shardExtChecksum(headerHash, ext);
        journal.writeAll(&ext, sizeof(ext));
    }
    journal.syncToDisk();
    return journal;
}

namespace {

/**
 * Validate and replay a whole-file snapshot into @p resume; throws
 * JournalError with the file path, byte offset, and expected-vs-found
 * hash of the first problem.  Shared by openOrResume() and inspect()
 * so both see identical validation.
 */
void
parseJournal(const std::vector<std::uint8_t> &bytes,
             const std::string &path, std::uint64_t headerHash,
             std::uint64_t modelHash, std::uint64_t siteCount,
             CampaignJournal::Resume &resume)
{
    resume = CampaignJournal::Resume{};
    resume.outcomes.assign(siteCount, Outcome::Invalid);
    resume.details.assign(siteCount, InjectionDetail{});
    resume.done.assign(siteCount, false);
    resume.cached.assign(siteCount, false);

    if (bytes.size() < sizeof(JournalHeader)) {
        throw JournalError("journal '" + path +
                           "' is truncated: no complete header (" +
                           std::to_string(bytes.size()) + " of " +
                           std::to_string(sizeof(JournalHeader)) +
                           " header bytes)");
    }
    JournalHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
        if (std::memcmp(header.magic, kMagic, 6) == 0) {
            throw JournalError(
                "journal '" + path + "' uses format version " +
                std::string(header.magic + 6, 2) + ", this build reads " +
                std::string(kMagic + 6, 2) +
                "; delete the journal and rerun");
        }
        throw JournalError("'" + path + "' is not a campaign journal");
    }
    if (header.checksum != headerChecksum(header)) {
        throw JournalError(journalAt(path, 0) +
                           " has a corrupt header (checksum mismatch: "
                           "expected " + hex(headerChecksum(header)) +
                           ", found " + hex(header.checksum) + ")");
    }
    if (header.modelHash != modelHash && header.headerHash == headerHash) {
        throw JournalError(
            "journal '" + path +
            "' was recorded under a different fault model (journal model "
            "hash " + hex(header.modelHash) + ", campaign expects " +
            hex(modelHash) + "); resume with the original --fault-model "
            "or delete the journal");
    }
    if (header.headerHash != headerHash) {
        throw JournalError(
            "journal '" + path +
            "' has a stale header hash: it records a different campaign "
            "(site list, kernel/pruning config, or seed changed; journal "
            "hash " + hex(header.headerHash) + ", campaign expects " +
            hex(headerHash) + ")");
    }
    if (header.siteCount != siteCount) {
        throw JournalError("journal '" + path + "' covers " +
                           std::to_string(header.siteCount) +
                           " sites, campaign has " +
                           std::to_string(siteCount));
    }

    std::size_t offset = sizeof(JournalHeader);
    bool sawFooter = false;
    while (offset < bytes.size()) {
        if (sawFooter) {
            throw JournalError(journalAt(path, offset) +
                               " has trailing bytes after its footer");
        }
        std::uint64_t lead;
        if (bytes.size() - offset < sizeof(lead)) {
            throw JournalError(
                "journal '" + path + "' is truncated: partial record at "
                "byte " + std::to_string(offset));
        }
        std::memcpy(&lead, bytes.data() + offset, sizeof(lead));

        if (lead == kShardSentinel) {
            if (resume.shard) {
                throw JournalError(journalAt(path, offset) +
                                   " has a duplicate shard extension");
            }
            if (bytes.size() - offset < sizeof(JournalShardExt)) {
                throw JournalError("journal '" + path +
                                   "' is truncated: partial shard "
                                   "extension at byte " +
                                   std::to_string(offset));
            }
            JournalShardExt ext;
            std::memcpy(&ext, bytes.data() + offset, sizeof(ext));
            if (ext.checksum != shardExtChecksum(headerHash, ext)) {
                throw JournalError(
                    journalAt(path, offset) +
                    " has a corrupt shard extension (checksum mismatch: "
                    "expected " + hex(shardExtChecksum(headerHash, ext)) +
                    ", found " + hex(ext.checksum) + ")");
            }
            ShardInfo info;
            info.campaignHash = ext.campaignHash;
            info.siteOffset = ext.siteOffset;
            info.campaignSites = ext.campaignSites;
            info.shardIndex = ext.shardIndex;
            info.shardCount = ext.shardCount;
            resume.shard = info;
            offset += sizeof(ext);
            continue;
        }

        if (lead == kSectionSentinel) {
            if (bytes.size() - offset < sizeof(JournalSectionBlock)) {
                throw JournalError("journal '" + path +
                                   "' is truncated: partial section "
                                   "summary at byte " +
                                   std::to_string(offset));
            }
            JournalSectionBlock block;
            std::memcpy(&block, bytes.data() + offset, sizeof(block));
            if (block.checksum !=
                sectionBlockChecksum(headerHash, block)) {
                throw JournalError(
                    journalAt(path, offset) +
                    " has a corrupt section summary (checksum "
                    "mismatch: expected " +
                    hex(sectionBlockChecksum(headerHash, block)) +
                    ", found " + hex(block.checksum) + ")");
            }
            JournalSectionSummary summary;
            summary.sectionHash = block.sectionHash;
            summary.tailHash = block.tailHash;
            summary.thread = block.thread;
            summary.firstRecord = block.firstRecord;
            summary.recordCount = block.recordCount;
            summary.sites = block.sites;
            summary.cachedSites = block.cachedSites;
            for (std::size_t i = 0; i < 4; ++i)
                summary.outcomes[i] = block.outcomes[i];
            for (std::size_t i = 0; i < kNumSdcPatterns; ++i)
                summary.sdcPatterns[i] = block.sdcPatterns[i];
            resume.sections.push_back(summary);
            offset += sizeof(block);
            continue;
        }

        if (lead == kFooterSentinel) {
            if (bytes.size() - offset < sizeof(JournalFooter)) {
                throw JournalError("journal '" + path +
                                   "' is truncated: partial footer at "
                                   "byte " + std::to_string(offset));
            }
            JournalFooter footer;
            std::memcpy(&footer, bytes.data() + offset, sizeof(footer));
            if (footer.checksum != footerChecksum(headerHash, footer)) {
                throw JournalError(
                    journalAt(path, offset) +
                    " has a corrupt footer (checksum mismatch: expected " +
                    hex(footerChecksum(headerHash, footer)) + ", found " +
                    hex(footer.checksum) + ")");
            }
            resume.complete = true;
            resume.footer.replaySeconds = footer.replaySeconds;
            resume.footer.injectSeconds = footer.injectSeconds;
            resume.footer.foldSeconds = footer.foldSeconds;
            resume.footer.sitesPerSecond = footer.sitesPerSecond;
            resume.footer.sitesDone = footer.sitesDone;
            resume.footer.workers = footer.workers;
            offset += sizeof(footer);
            sawFooter = true;
            continue;
        }

        if (bytes.size() - offset < sizeof(JournalRecord)) {
            throw JournalError(
                "journal '" + path + "' is truncated: partial record at "
                "byte " + std::to_string(offset) + " (" +
                std::to_string(bytes.size() - offset) + " of " +
                std::to_string(sizeof(JournalRecord)) + " bytes)");
        }
        JournalRecord record;
        std::memcpy(&record, bytes.data() + offset, sizeof(record));
        std::size_t recordNumber = resume.doneCount;
        if (record.checksum != recordChecksum(headerHash, record)) {
            throw JournalError(
                journalAt(path, offset) +
                " has a corrupt record (checksum mismatch at record " +
                std::to_string(recordNumber) + ": expected " +
                hex(recordChecksum(headerHash, record)) + ", found " +
                hex(record.checksum) + ")");
        }
        if (record.siteIndex >= siteCount ||
            record.outcome > static_cast<std::uint32_t>(Outcome::Invalid) ||
            record.pattern >= kNumSdcPatterns ||
            (record.flags & ~kRecordFlagMask) != 0) {
            throw JournalError(journalAt(path, offset) +
                               " has a corrupt record (out-of-range "
                               "values at record " +
                               std::to_string(recordNumber) + ")");
        }
        if (resume.done[record.siteIndex]) {
            throw JournalError(journalAt(path, offset) +
                               " has a duplicate record for site " +
                               std::to_string(record.siteIndex));
        }
        resume.done[record.siteIndex] = true;
        if ((record.flags & kRecordFromCache) != 0) {
            resume.cached[record.siteIndex] = true;
            resume.cachedCount++;
        }
        resume.outcomes[record.siteIndex] =
            static_cast<Outcome>(record.outcome);
        InjectionDetail &detail = resume.details[record.siteIndex];
        detail.staticIndex = record.staticIndex;
        detail.hasAnatomy = (record.flags & kRecordHasAnatomy) != 0;
        if (detail.hasAnatomy) {
            detail.anatomy.pattern = static_cast<SdcPattern>(record.pattern);
            for (std::size_t i = 0; i < kMagnitudeBuckets; ++i)
                detail.anatomy.magnitude[i] = record.magnitude[i];
        }
        resume.doneCount++;
        offset += sizeof(record);
    }

    if (resume.complete && resume.doneCount != resume.footer.sitesDone) {
        throw JournalError(
            "journal '" + path + "' footer claims " +
            std::to_string(resume.footer.sitesDone) + " sites but " +
            std::to_string(resume.doneCount) + " records are present");
    }
}

} // namespace

CampaignJournal
CampaignJournal::openOrResume(const std::string &path,
                              std::uint64_t headerHash,
                              std::uint64_t modelHash,
                              std::uint64_t siteCount, Resume &resume)
{
    int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) {
        if (errno == ENOENT) {
            resume = Resume{};
            resume.outcomes.assign(siteCount, Outcome::Invalid);
            resume.details.assign(siteCount, InjectionDetail{});
            resume.done.assign(siteCount, false);
            resume.cached.assign(siteCount, false);
            return create(path, headerHash, modelHash, siteCount);
        }
        throwErrno("cannot open journal", path);
    }
    CampaignJournal journal(path, fd, headerHash);
    auto bytes = readWholeFile(fd, path);
    parseJournal(bytes, path, headerHash, modelHash, siteCount, resume);

    journal.committed_ = resume.doneCount;
    if (::lseek(fd, 0, SEEK_END) < 0)
        throwErrno("cannot seek journal", path);
    return journal;
}

CampaignJournal::Resume
CampaignJournal::inspect(const std::string &path, std::uint64_t headerHash,
                         std::uint64_t modelHash, std::uint64_t siteCount)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throwErrno("cannot open journal", path);
    std::vector<std::uint8_t> bytes;
    try {
        bytes = readWholeFile(fd, path);
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    Resume resume;
    parseJournal(bytes, path, headerHash, modelHash, siteCount, resume);
    return resume;
}

void
CampaignJournal::append(std::uint64_t siteIndex, Outcome outcome,
                        const InjectionDetail &detail, bool fromCache)
{
    JournalRecord record{};
    record.siteIndex = siteIndex;
    record.outcome = static_cast<std::uint32_t>(outcome);
    record.staticIndex = detail.staticIndex;
    if (detail.hasAnatomy) {
        record.flags |= kRecordHasAnatomy;
        record.pattern = static_cast<std::uint8_t>(detail.anatomy.pattern);
        for (std::size_t i = 0; i < kMagnitudeBuckets; ++i)
            record.magnitude[i] = detail.anatomy.magnitude[i];
    }
    if (fromCache)
        record.flags |= kRecordFromCache;
    record.checksum = recordChecksum(header_hash_, record);
    const auto *p = reinterpret_cast<const std::uint8_t *>(&record);
    pending_.insert(pending_.end(), p, p + sizeof(record));
    pending_records_++;
}

void
CampaignJournal::appendSectionSummary(const JournalSectionSummary &summary)
{
    JournalSectionBlock block{};
    block.sentinel = kSectionSentinel;
    block.sectionHash = summary.sectionHash;
    block.tailHash = summary.tailHash;
    block.thread = summary.thread;
    block.firstRecord = summary.firstRecord;
    block.recordCount = summary.recordCount;
    block.sites = summary.sites;
    block.cachedSites = summary.cachedSites;
    for (std::size_t i = 0; i < 4; ++i)
        block.outcomes[i] = summary.outcomes[i];
    for (std::size_t i = 0; i < kNumSdcPatterns; ++i)
        block.sdcPatterns[i] = summary.sdcPatterns[i];
    block.checksum = sectionBlockChecksum(header_hash_, block);
    const auto *p = reinterpret_cast<const std::uint8_t *>(&block);
    pending_.insert(pending_.end(), p, p + sizeof(block));
}

CampaignJournal::CommitInfo
CampaignJournal::commitChunk()
{
    if (pending_.empty())
        return {};
    CommitInfo info;
    info.records = pending_records_;
    info.bytes = pending_.size();
    writeAll(pending_.data(), pending_.size());
    syncToDisk();
    committed_ += info.records;
    pending_.clear();
    pending_records_ = 0;
    return info;
}

CampaignJournal::CommitInfo
CampaignJournal::writeFooter(const Phases &phases)
{
    CommitInfo info = commitChunk();
    JournalFooter footer{};
    footer.sentinel = kFooterSentinel;
    footer.replaySeconds = phases.replaySeconds;
    footer.injectSeconds = phases.injectSeconds;
    footer.foldSeconds = phases.foldSeconds;
    footer.sitesPerSecond = phases.sitesPerSecond;
    footer.sitesDone = phases.sitesDone;
    footer.workers = phases.workers;
    footer.checksum = footerChecksum(header_hash_, footer);
    writeAll(&footer, sizeof(footer));
    syncToDisk();
    info.bytes += sizeof(footer);
    return info;
}

void
CampaignJournal::writeAll(const void *bytes, std::size_t size)
{
    FSP_ASSERT(fd_ >= 0, "journal used after move");
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    while (size > 0) {
        ssize_t n = ::write(fd_, p, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("cannot write journal", path_);
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
}

void
CampaignJournal::syncToDisk()
{
    if (::fsync(fd_) < 0 && errno != EINVAL && errno != ENOTSUP)
        throwErrno("cannot fsync journal", path_);
}

} // namespace fsp::faults
