#include "faults/fault_model.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "faults/campaign_journal.hh"
#include "sim/instruction.hh"
#include "util/prng.hh"

namespace fsp::faults {

namespace {

/**
 * Deterministic per-site randomness: every stochastic model decision
 * (scattered bit choice, memory addresses, activation periods) comes
 * from this mix of the campaign seed, a model-specific label and the
 * site triple.  Same campaign + same site -> same draw, independent of
 * injection order and worker count.
 */
std::uint64_t
siteSeed(const ModelContext &ctx, const FaultSite &site,
         std::string_view label)
{
    std::uint64_t state = deriveSeed(ctx.seed, label);
    state ^= site.thread + 0x9e3779b97f4a7c15ULL;
    state = splitMix64(state);
    state ^= site.dynIndex + 0x9e3779b97f4a7c15ULL;
    state = splitMix64(state);
    state ^= site.bit;
    return splitMix64(state);
}

/** Shared base plan: copy the site coordinates, leave the rest. */
sim::FaultPlan
basePlan(const FaultSite &site, sim::FaultKind kind)
{
    sim::FaultPlan plan;
    plan.kind = kind;
    plan.thread = site.thread;
    plan.dynIndex = site.dynIndex;
    return plan;
}

std::uint64_t
singleBitMask(std::uint32_t bit)
{
    return bit < 64 ? std::uint64_t{1} << bit : 0;
}

// ---------------------------------------------------------------------
// Register-destination transients
// ---------------------------------------------------------------------

/** The paper's model: one transient destination-register bit flip. */
class SingleBitModel final : public FaultModel
{
  public:
    std::string_view kind() const override { return "single-bit"; }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<SingleBitModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        return ModelFootprint::ThreadLocal;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &) const override
    {
        sim::FaultPlan p = basePlan(site, sim::FaultKind::DestReg);
        p.mask = singleBitMask(site.bit);
        return p;
    }
};

/** Spatially-correlated burst: @c width adjacent bits flip together. */
class MultiBitModel final : public FaultModel
{
  public:
    explicit MultiBitModel(unsigned width) : width_(width) {}

    std::string_view kind() const override { return "multi-bit"; }
    std::string
    params() const override
    {
        return "width=" + std::to_string(width_);
    }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<MultiBitModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        return ModelFootprint::ThreadLocal;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &) const override
    {
        sim::FaultPlan p = basePlan(site, sim::FaultKind::DestReg);
        std::uint64_t mask = 0;
        for (unsigned i = 0; i < width_; ++i)
            mask |= singleBitMask(site.bit + i);
        p.mask = mask;
        return p;
    }

  private:
    unsigned width_;
};

/** Uncorrelated multi-bit upset: @c count pseudorandom bits flip. */
class ScatteredBitsModel final : public FaultModel
{
  public:
    explicit ScatteredBitsModel(unsigned count) : count_(count) {}

    std::string_view kind() const override { return "scattered-bits"; }
    std::string
    params() const override
    {
        return "count=" + std::to_string(count_);
    }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<ScatteredBitsModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        return ModelFootprint::ThreadLocal;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &ctx) const override
    {
        sim::FaultPlan p = basePlan(site, sim::FaultKind::DestReg);
        // The site's own bit always participates so the model stays a
        // strict superset of single-bit; extra bits come from the
        // deterministic per-site stream.
        std::uint64_t mask = singleBitMask(site.bit);
        Prng prng(siteSeed(ctx, site, "scattered-bits"));
        for (unsigned i = 1; i < count_; ++i)
            mask |= std::uint64_t{1} << prng.below(64);
        p.mask = mask;
        return p;
    }

  private:
    unsigned count_;
};

// ---------------------------------------------------------------------
// Stuck-at faults (permanent / intermittent)
// ---------------------------------------------------------------------

/**
 * Destination-writeback stuck-at fault.  @c period 0 is permanent
 * (active from the site's dynamic index to thread exit); a non-zero
 * period alternates active/idle windows of that many dynamic
 * instructions.  @c period == kPeriodFromPrng draws the period
 * deterministically from the campaign PRNG per site.
 */
class StuckAtModel final : public FaultModel
{
  public:
    static constexpr std::uint64_t kPeriodFromPrng = ~std::uint64_t{0};

    StuckAtModel(std::string_view kind, bool stuckHigh, std::uint64_t period)
        : kind_(kind), stuck_high_(stuckHigh), period_(period)
    {
    }

    std::string_view kind() const override { return kind_; }
    std::string
    params() const override
    {
        if (period_ == kPeriodFromPrng)
            return "period=prng";
        if (period_ == 0)
            return {};
        return "period=" + std::to_string(period_);
    }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<StuckAtModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        return ModelFootprint::ThreadLocal;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &ctx) const override
    {
        sim::FaultPlan p = basePlan(site, sim::FaultKind::DestRegStuck);
        p.mask = singleBitMask(site.bit);
        p.stuckValue = stuck_high_ ? p.mask : 0;
        if (period_ == kPeriodFromPrng) {
            // Intermittent activation schedule keyed off the campaign
            // PRNG: windows of 1..16 dynamic instructions.
            Prng prng(siteSeed(ctx, site, "stuck-period"));
            p.period = 1 + prng.below(16);
        } else {
            p.period = period_;
        }
        return p;
    }

  private:
    std::string_view kind_;
    bool stuck_high_;
    std::uint64_t period_;
};

// ---------------------------------------------------------------------
// Control-state faults
// ---------------------------------------------------------------------

/** Flip a stored predicate-register flag of the faulty thread. */
class PredFlipModel final : public FaultModel
{
  public:
    std::string_view kind() const override { return "pred-flip"; }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<PredFlipModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        return ModelFootprint::ThreadLocal;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &) const override
    {
        sim::FaultPlan p = basePlan(site, sim::FaultKind::PredState);
        // Spread the site's bit axis over (register, flag) pairs so a
        // bit sweep covers the whole predicate file.
        p.reg = (site.bit / 4) % sim::kNumPredRegs;
        p.mask = std::uint64_t{1} << (site.bit % 4);
        return p;
    }
};

/** Corrupt the thread's control-flow position (a wild branch). */
class PcFlipModel final : public FaultModel
{
  public:
    std::string_view kind() const override { return "pc-flip"; }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<PcFlipModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        return ModelFootprint::ThreadLocal;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &) const override
    {
        sim::FaultPlan p = basePlan(site, sim::FaultKind::PcState);
        // Low bits only: the pc is an instruction index, so flipping a
        // low bit lands near the fault while higher choices jump out of
        // the code entirely (an implicit thread exit).
        p.mask = std::uint64_t{1} << (site.bit % 8);
        return p;
    }
};

/** Corrupted barrier bookkeeping: the thread skips one rendezvous. */
class BarrierSkipModel final : public FaultModel
{
  public:
    std::string_view kind() const override { return "barrier-skip"; }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<BarrierSkipModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        // Skipping a rendezvous perturbs the phase interleaving of the
        // whole CTA, not just the faulty thread.
        return ModelFootprint::CtaLocal;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &) const override
    {
        return basePlan(site, sim::FaultKind::BarrierSkip);
    }
};

// ---------------------------------------------------------------------
// Memory faults
// ---------------------------------------------------------------------

/** Flip one bit of one shared-memory byte of the faulty thread's CTA. */
class SharedMemFlipModel final : public FaultModel
{
  public:
    std::string_view kind() const override { return "smem-flip"; }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<SharedMemFlipModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        return ModelFootprint::CtaLocal;
    }

    bool
    validate(const FaultSite &site, const ModelContext &ctx,
             std::string *why) const override
    {
        if (!FaultModel::validate(site, ctx, why))
            return false;
        if (ctx.sharedBytes == 0) {
            if (why)
                *why = "smem-flip: kernel allocates no shared memory";
            return false;
        }
        return true;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &ctx) const override
    {
        sim::FaultPlan p = basePlan(site, sim::FaultKind::SharedMem);
        p.addr = siteSeed(ctx, site, "smem-addr") % ctx.sharedBytes;
        p.mask = std::uint64_t{1} << (site.bit % 8);
        return p;
    }
};

/**
 * Flip one bit of one global-memory byte when the faulty thread reaches
 * its dynamic index.  Hazard-guarded in sliced runs (the executor
 * treats the flip as a load+store by the faulty thread), so it composes
 * with CTA slicing without changing classifications.
 */
class GlobalMemFlipModel final : public FaultModel
{
  public:
    explicit GlobalMemFlipModel(bool atLaunch) : at_launch_(atLaunch) {}

    std::string_view
    kind() const override
    {
        return at_launch_ ? "gmem-launch-flip" : "gmem-flip";
    }
    std::unique_ptr<FaultModel> clone() const override
    {
        return std::make_unique<GlobalMemFlipModel>(*this);
    }
    ModelFootprint footprint() const override
    {
        return ModelFootprint::GlobalMemory;
    }
    bool supportsSlicing() const override { return !at_launch_; }
    bool supportsCheckpoints() const override { return !at_launch_; }

    bool
    validate(const FaultSite &site, const ModelContext &ctx,
             std::string *why) const override
    {
        if (!FaultModel::validate(site, ctx, why))
            return false;
        if (ctx.globalBytes == 0) {
            if (why)
                *why = std::string(kind()) +
                       ": kernel allocates no global memory";
            return false;
        }
        return true;
    }

    sim::FaultPlan
    plan(const FaultSite &site, const ModelContext &ctx) const override
    {
        sim::FaultPlan p =
            basePlan(site, at_launch_ ? sim::FaultKind::GlobalMemLaunch
                                      : sim::FaultKind::GlobalMem);
        p.addr = ctx.globalBase +
                 siteSeed(ctx, site, "gmem-addr") % ctx.globalBytes;
        p.mask = std::uint64_t{1} << (site.bit % 8);
        return p;
    }

  private:
    bool at_launch_;
};

// ---------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------

struct SpecParams
{
    bool ok = true;
    std::string error;
    std::vector<std::pair<std::string, std::string>> pairs;

    /** Consume an unsigned integer parameter; @p fallback when absent. */
    std::uint64_t
    getU64(std::string_view key, std::uint64_t fallback,
           std::uint64_t minValue, std::uint64_t maxValue)
    {
        for (auto it = pairs.begin(); it != pairs.end(); ++it) {
            if (it->first != key)
                continue;
            std::uint64_t value = 0;
            std::istringstream in(it->second);
            in >> value;
            if (!in || !in.eof() || value < minValue || value > maxValue) {
                ok = false;
                error = "bad value for '" + std::string(key) +
                        "': " + it->second;
                return fallback;
            }
            pairs.erase(it);
            return value;
        }
        return fallback;
    }
};

SpecParams
splitParams(std::string_view text)
{
    SpecParams out;
    while (!text.empty()) {
        std::size_t comma = text.find(',');
        std::string_view item = text.substr(0, comma);
        text = comma == std::string_view::npos ? std::string_view{}
                                               : text.substr(comma + 1);
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
            out.ok = false;
            out.error = "expected key=value, got '" + std::string(item) + "'";
            return out;
        }
        out.pairs.emplace_back(std::string(item.substr(0, eq)),
                               std::string(item.substr(eq + 1)));
    }
    return out;
}

struct BuiltinModel
{
    std::string_view name;
    std::string_view description;
};

constexpr BuiltinModel kBuiltins[] = {
    {"single-bit",
     "transient single-bit destination-register flip (the paper's model)"},
    {"multi-bit",
     "spatially-correlated burst of adjacent destination bits (width=N)"},
    {"scattered-bits",
     "uncorrelated multi-bit destination upset (count=N pseudorandom bits)"},
    {"stuck-at-0", "permanent stuck-at-0 destination writeback bit"},
    {"stuck-at-1", "permanent stuck-at-1 destination writeback bit"},
    {"intermittent-stuck",
     "intermittent stuck-at bit, PRNG-scheduled activation (period=N|prng)"},
    {"pred-flip", "flip a stored predicate-register flag"},
    {"pc-flip", "corrupt the thread's control-flow position (wild branch)"},
    {"barrier-skip", "thread skips its next barrier rendezvous"},
    {"smem-flip", "flip one CTA shared-memory bit at the fault's moment"},
    {"gmem-flip", "flip one global-memory bit at the fault's moment"},
    {"gmem-launch-flip",
     "flip one global-memory bit before launch (corrupted input)"},
};

std::unique_ptr<FaultModel>
makeModel(std::string_view name, SpecParams &params, std::string *error)
{
    std::unique_ptr<FaultModel> model;
    if (name == "single-bit") {
        model = std::make_unique<SingleBitModel>();
    } else if (name == "multi-bit") {
        auto width = params.getU64("width", 2, 2, 64);
        model = std::make_unique<MultiBitModel>(
            static_cast<unsigned>(width));
    } else if (name == "scattered-bits") {
        auto count = params.getU64("count", 3, 2, 64);
        model = std::make_unique<ScatteredBitsModel>(
            static_cast<unsigned>(count));
    } else if (name == "stuck-at-0") {
        model = std::make_unique<StuckAtModel>("stuck-at-0", false, 0);
    } else if (name == "stuck-at-1") {
        model = std::make_unique<StuckAtModel>("stuck-at-1", true, 0);
    } else if (name == "intermittent-stuck") {
        std::uint64_t period = StuckAtModel::kPeriodFromPrng;
        auto it = std::find_if(
            params.pairs.begin(), params.pairs.end(),
            [](const auto &pair) { return pair.first == "period"; });
        if (it != params.pairs.end()) {
            if (it->second == "prng")
                params.pairs.erase(it);
            else
                period = params.getU64("period", period, 1,
                                       std::uint64_t{1} << 32);
        }
        model = std::make_unique<StuckAtModel>("intermittent-stuck", true,
                                               period);
    } else if (name == "pred-flip") {
        model = std::make_unique<PredFlipModel>();
    } else if (name == "pc-flip") {
        model = std::make_unique<PcFlipModel>();
    } else if (name == "barrier-skip") {
        model = std::make_unique<BarrierSkipModel>();
    } else if (name == "smem-flip") {
        model = std::make_unique<SharedMemFlipModel>();
    } else if (name == "gmem-flip") {
        model = std::make_unique<GlobalMemFlipModel>(false);
    } else if (name == "gmem-launch-flip") {
        model = std::make_unique<GlobalMemFlipModel>(true);
    } else {
        if (error) {
            std::ostringstream os;
            os << "unknown fault model '" << name << "' (known:";
            for (const auto &builtin : kBuiltins)
                os << ' ' << builtin.name;
            os << ')';
            *error = os.str();
        }
        return nullptr;
    }
    if (!params.ok) {
        if (error)
            *error = std::string(name) + ": " + params.error;
        return nullptr;
    }
    if (!params.pairs.empty()) {
        if (error)
            *error = std::string(name) + ": unknown parameter '" +
                     params.pairs.front().first + "'";
        return nullptr;
    }
    return model;
}

} // namespace

std::string_view
modelFootprintName(ModelFootprint footprint)
{
    switch (footprint) {
    case ModelFootprint::ThreadLocal: return "thread-local";
    case ModelFootprint::CtaLocal: return "cta-local";
    case ModelFootprint::GlobalMemory: return "global-memory";
    }
    return "unknown";
}

std::string
FaultModel::identity() const
{
    std::string out(kind());
    out += '(';
    out += params();
    out += ')';
    return out;
}

std::uint64_t
FaultModel::identityHash() const
{
    JournalHasher hasher;
    hasher.update(std::string_view("fsp-fault-model"));
    hasher.update(std::string_view(identity()));
    return hasher.digest();
}

bool
FaultModel::validate(const FaultSite &site, const ModelContext &ctx,
                     std::string *why) const
{
    const auto &icnt = *ctx.goldenICnt;
    if (site.thread >= icnt.size()) {
        if (why) {
            std::ostringstream os;
            os << "site thread " << site.thread
               << " outside launch of " << icnt.size() << " threads";
            *why = os.str();
        }
        return false;
    }
    if (site.dynIndex >= icnt[site.thread]) {
        if (why) {
            std::ostringstream os;
            os << "site dynIndex " << site.dynIndex
               << " beyond thread's golden instruction count "
               << icnt[site.thread];
            *why = os.str();
        }
        return false;
    }
    return true;
}

std::unique_ptr<FaultModel>
defaultFaultModel()
{
    return std::make_unique<SingleBitModel>();
}

std::unique_ptr<FaultModel>
parseFaultModel(std::string_view spec, std::string *error)
{
    std::size_t colon = spec.find(':');
    std::string_view name = spec.substr(0, colon);
    SpecParams params;
    if (colon != std::string_view::npos) {
        params = splitParams(spec.substr(colon + 1));
        if (!params.ok) {
            if (error)
                *error = std::string(name) + ": " + params.error;
            return nullptr;
        }
    }
    return makeModel(name, params, error);
}

const std::vector<std::string> &
builtinFaultModels()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &builtin : kBuiltins)
            out.emplace_back(builtin.name);
        return out;
    }();
    return names;
}

std::string_view
faultModelDescription(std::string_view kind)
{
    for (const auto &builtin : kBuiltins)
        if (builtin.name == kind)
            return builtin.description;
    return {};
}

} // namespace fsp::faults
