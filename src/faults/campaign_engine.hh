/**
 * @file
 * The unified campaign engine: one facade over every way this library
 * runs an injection campaign -- explicit site lists, weighted (pruned)
 * site lists, and the random-sampling statistical baseline -- serial
 * or parallel, with optional crash-safe journaling and resume.
 *
 * Every injection run of a campaign is independent (the injector
 * restores the pristine image before each run), so the engine shards
 * its site list into fixed chunks, executes the chunks on a thread
 * pool with one private Injector per worker, and records each site's
 * Outcome into its slot of a pre-sized array.  The final tally is then
 * folded *serially in site order*, which makes the result -- run
 * counts and the weighted double accumulation alike -- bit-identical
 * regardless of worker count, chunk size, scheduling, or how many
 * outcomes were replayed from a journal or the section cache instead
 * of injected (the reference serial fold lives in the determinism
 * suite, tests/reference_campaign.hh).
 *
 * Durable sessions: when CampaignOptions::journalPath is set, every
 * completed chunk's outcomes are appended to a faults::CampaignJournal
 * and fsync'd from the chunk fold point.  A campaign killed mid-run
 * and restarted with CampaignOptions::resume replays the journal,
 * injects only the remaining sites, and produces the same profile
 * bit-for-bit (see tests/test_campaign_journal).
 *
 * Incremental campaigns: when CampaignOptions::sectionCache and
 * sectionIndex are set, sites whose trace section (content + upstream
 * state + downstream propagation hashes, see section_cache.hh) is
 * unchanged since an earlier campaign replay their recorded outcome
 * from the cache instead of injecting, and freshly injected outcomes
 * are stored back.  The warm profile is bit-identical to a cold run.
 *
 * Observability: CampaignOptions::observer receives typed events
 * (site classified, chunk folded, checkpoint restored, slice hazard,
 * cache hit/miss, journal commit, phase boundaries -- see observer.hh)
 * without ever influencing results; per-site wall times are only
 * measured while an observer is attached, so the unobserved hot path
 * stays untouched.
 */

#ifndef FSP_FAULTS_CAMPAIGN_ENGINE_HH
#define FSP_FAULTS_CAMPAIGN_ENGINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "faults/campaign_journal.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "faults/observer.hh"
#include "faults/outcome.hh"
#include "faults/sdc_anatomy.hh"
#include "faults/section_cache.hh"
#include "util/prng.hh"
#include "util/thread_pool.hh"

namespace fsp {
class JsonWriter;
} // namespace fsp

namespace fsp::faults {

/** Result of a campaign. */
struct CampaignResult
{
    OutcomeDist dist;        ///< (weighted) outcome tally
    std::uint64_t runs = 0;  ///< injection runs performed
    InjectionStats injection; ///< how the runs were executed

    /**
     * SDC anatomy + per-static-instruction failure-class ranking.
     * Folded serially in site order, so it is bit-identical at any
     * worker count and whether outcomes were injected, replayed from
     * a journal, or satisfied from the section cache.
     */
    SdcAnatomyProfile anatomy;

    /**
     * Per-site outcomes in original site-list order, filled only when
     * CampaignOptions::keepSiteOutcomes is set; covers every site --
     * injected, journal-replayed, or cache-replayed alike.  The
     * protection planner consumes this to attribute SDC weight to
     * threads.
     */
    std::vector<Outcome> siteOutcomes;
};

/**
 * Thrown by the engine's testing hook (abortAfterSites) after the
 * current chunk's journal records are durably committed -- the state a
 * SIGKILL between chunk commits leaves behind.
 */
class CampaignAborted : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A worker body threw during parallel classification: the message
 * carries the first exception's text plus how many chunks the pool
 * abandoned unclaimed, so a failed campaign reports *why* it stopped
 * instead of silently dropping the cause.  The journal retains every
 * chunk committed before the failure, so a resume picks up where the
 * failure cut the run short.
 */
class CampaignError : public std::runtime_error
{
  public:
    CampaignError(const std::string &message,
                  std::size_t abandonedChunks)
        : std::runtime_error(message), abandoned_chunks_(abandonedChunks)
    {
    }

    /** Chunks never claimed because of the failure. */
    std::size_t abandonedChunks() const { return abandoned_chunks_; }

  private:
    std::size_t abandoned_chunks_ = 0;
};

/** Campaign engine knobs. */
struct CampaignOptions
{
    /** Worker threads; 0 selects ThreadPool::defaultWorkerCount(). */
    unsigned workers = 0;

    /** Sites per chunk; 0 derives one from the list and worker count. */
    std::size_t chunkSize = 0;

    /**
     * Event sink for this engine's campaigns (not owned; must outlive
     * every run).  See observer.hh for the event set and the per-event
     * threading contract.  Observers never influence results: profiles
     * are bit-identical with or without one attached.
     */
    CampaignObserver *observer = nullptr;

    /**
     * @{ Incremental campaigns: content-addressed section result
     * cache.  Both must be set (and outlive every run) for the reuse
     * path to activate; the index maps each fault site to its trace
     * section's identity hashes (built by the analysis layer, which
     * owns the trace/pruning machinery) and the cache persists per-site
     * outcomes keyed by section content, fault site, fault model, and
     * seed.  Like the observer, these never influence the folded
     * profile -- a warm run is bit-identical to a cold one -- so they
     * are ignored by sameEngineConfig() and re-targetable on a cached
     * engine via setSectionCache().
     */
    SectionCache *sectionCache = nullptr;
    const SectionIndex *sectionIndex = nullptr;
    /** @} */

    /**
     * Permit the sliced injection path when the kernel's CTAs are
     * independent.  false forces full-grid runs on every worker
     * (useful for A/B validation and benchmarking).
     */
    bool allowSlicing = true;

    /**
     * Permit checkpointed temporal replay.  false skips checkpoint
     * recording (when the engine constructs its own prototype) and
     * forces every worker to execute injections from instruction zero
     * (the A/B switch behind fsp/resilience_report --no-checkpoints).
     */
    bool allowCheckpoints = true;

    /**
     * Fault-model strategy applied to every worker injector; null
     * selects the paper's default (single-bit destination flip).
     * Shared const -- models are immutable and thread-safe.  Model
     * randomness (memory addresses, activation schedules) is seeded
     * from journalKey.seed, so it is part of the campaign identity.
     */
    std::shared_ptr<const FaultModel> faultModel;

    /**
     * Protection plan applied to every worker injector; null runs the
     * campaign unprotected.  Faults firing inside the plan's coverage
     * are suppressed (classified Masked, counted as detections), so --
     * unlike the observer or the section cache -- this changes results:
     * it participates in sameEngineConfig(), and the plan's identity
     * hash is folded into the journal tag so a protected journal never
     * resumes an unprotected campaign or vice versa.
     */
    std::shared_ptr<const sim::ProtectionPlan> protection;

    /**
     * Fill CampaignResult::siteOutcomes with each site's outcome in
     * original list order.  Result-neutral (the fold is unchanged):
     * ignored by sameEngineConfig() and re-targetable on a cached
     * engine via setKeepSiteOutcomes().
     */
    bool keepSiteOutcomes = false;

    /** @{ Durable sessions (crash-safe result journal). */
    /** On-disk journal path; empty disables journaling. */
    std::string journalPath;

    /**
     * Resume from an existing journal (validating its header hash and
     * replaying completed sites) instead of truncating it.  A missing
     * file starts a fresh journal either way.
     */
    bool resume = false;

    /** Campaign identity folded into the journal header hash. */
    JournalKey journalKey;

    /**
     * Testing hook simulating a kill: once at least this many sites of
     * the run have been classified, throw CampaignAborted from the
     * chunk fold point *after* the journal commit (so the journal is
     * exactly as durable as a real SIGKILL between commits would leave
     * it); 0 disables.
     */
    std::uint64_t abortAfterSites = 0;
    /** @} */

    /**
     * Does @p other configure an identical engine?  Ignores the
     * result-neutral fields (observer, section cache/index); used by
     * caches (the analysis facade) to decide whether an existing
     * engine can be reused.
     */
    bool sameEngineConfig(const CampaignOptions &other) const
    {
        return workers == other.workers && chunkSize == other.chunkSize &&
               allowSlicing == other.allowSlicing &&
               allowCheckpoints == other.allowCheckpoints &&
               journalPath == other.journalPath &&
               resume == other.resume &&
               journalKey.tag == other.journalKey.tag &&
               journalKey.seed == other.journalKey.seed &&
               abortAfterSites == other.abortAfterSites &&
               faultModelIdentity() == other.faultModelIdentity() &&
               protectionIdentity() == other.protectionIdentity();
    }

    /** Identity of the effective model (default when faultModel null). */
    std::string
    faultModelIdentity() const
    {
        return faultModel ? faultModel->identity() : "single-bit()";
    }

    /** Identity of the protection plan; empty when unprotected. */
    std::string
    protectionIdentity() const
    {
        return protection ? protection->identity() : std::string();
    }
};

/**
 * Per-phase wall time and throughput report for the engine's most
 * recent campaign, sealed into the journal footer when a journal is
 * attached and surfaced by the tools' --json output.
 */
struct CampaignStats
{
    unsigned workers = 0;
    std::size_t chunkSize = 0;
    std::uint64_t chunks = 0;
    std::uint64_t sites = 0;         ///< campaign size (replayed + injected)
    std::uint64_t injectedSites = 0; ///< classified by this run
    std::uint64_t replayedSites = 0; ///< satisfied from the journal
    std::vector<std::uint64_t> perWorkerRuns; ///< runs executed per worker

    /** @{ Section-cache accounting (zero when no cache is attached). */
    std::uint64_t cachedSites = 0;  ///< satisfied from the section cache
    std::uint64_t cacheHits = 0;    ///< cache lookups that hit, this run
    std::uint64_t cacheMisses = 0;  ///< cache lookups that missed
    std::uint64_t cacheBytesRead = 0;
    std::uint64_t cacheBytesWritten = 0;
    /** @} */
    double replaySeconds = 0.0;  ///< journal open + outcome replay
    double injectSeconds = 0.0;  ///< parallel classification
    double foldSeconds = 0.0;    ///< serial outcome fold + footer
    double elapsedSeconds = 0.0; ///< replay + inject + fold
    double sitesPerSecond = 0.0; ///< injectedSites / injectSeconds
    InjectionStats injection; ///< summed over workers, this campaign only
    std::string journalPath;  ///< empty when no journal was attached
    bool resumed = false;     ///< run opened an existing journal

    /**
     * @{ Failure report of an aborted classification: the first worker
     * exception's message and the chunk count the pool abandoned
     * unclaimed because of it.  Empty/zero on success.  Filled before
     * CampaignError propagates, so lastStats() explains a failed run.
     */
    std::string workerError;
    std::uint64_t abandonedChunks = 0;
    /** @} */

    /** One-line human-readable summary for logs. */
    std::string summary() const;
};

/**
 * Emit a CampaignStats report as fields of the currently open JSON
 * object: phase wall times, throughput, journal state, and the nested
 * injection counters (the machine-readable counterpart of summary(),
 * shared by the fsp and resilience_report --json outputs).
 */
void writeCampaignStats(JsonWriter &json, const CampaignStats &stats);

/**
 * A reusable campaign engine for one kernel launch.
 *
 * Construction performs the golden run once (via a prototype Injector)
 * and clones it per worker; the engine can then run any number of
 * campaigns.  Results are guaranteed identical to the reference serial
 * fold (tests/reference_campaign.hh, exercised by the determinism
 * suite in tests/test_parallel_campaign), including across journal
 * kill/resume cycles and warm section-cache reruns.
 */
class CampaignEngine
{
  public:
    /** Mirror of Injector's constructor; performs the golden run. */
    CampaignEngine(const sim::Program &program,
                   const sim::LaunchConfig &config,
                   const sim::GlobalMemory &image,
                   std::vector<OutputRegion> outputs,
                   CampaignOptions options = {});

    /**
     * Build from an existing injector whose golden state is simply
     * cloned -- no additional golden run.
     */
    CampaignEngine(const Injector &prototype,
                   CampaignOptions options = {});

    /** Inject every site in the list, tallying unweighted outcomes. */
    CampaignResult run(const std::vector<FaultSite> &sites);

    /** Inject every weighted site, tallying weighted outcomes. */
    CampaignResult run(const std::vector<WeightedSite> &sites);

    /**
     * The statistical baseline: @p runs sites drawn uniformly at
     * random from the full fault space (with replacement) by the
     * caller's @p prng exactly as in the serial driver (the generator
     * advances identically), then injected and tallied.
     */
    CampaignResult run(const FaultSpace &space, std::size_t runs,
                       Prng &prng);

    /**
     * @{ Re-target the result-neutral option fields without rebuilding
     * the engine (they are ignored by sameEngineConfig, so a cached
     * engine may carry stale ones from an earlier caller).
     */
    void setObserver(CampaignObserver *observer)
    {
        options_.observer = observer;
    }

    void
    setSectionCache(SectionCache *cache, const SectionIndex *index)
    {
        options_.sectionCache = cache;
        options_.sectionIndex = index;
    }

    void setKeepSiteOutcomes(bool keep)
    {
        options_.keepSiteOutcomes = keep;
    }
    /** @} */

    /** The protection plan every worker injects under; may be null. */
    std::shared_ptr<const sim::ProtectionPlan>
    protectionPlan() const
    {
        return injectors_[0]->protectionPlan();
    }

    unsigned workerCount() const { return pool_.workerCount(); }

    /** The fault model every worker injects under. */
    const FaultModel &
    faultModel() const
    {
        return injectors_[0]->faultModel();
    }

    /** Do the workers' injectors use the sliced path? */
    bool slicingActive() const { return injectors_[0]->slicingActive(); }

    /** Do the workers' injectors resume from checkpoints? */
    bool
    checkpointsActive() const
    {
        return injectors_[0]->checkpointsActive();
    }

    /** The workers' shared CTA-independence decision. */
    const SlicingPlan &
    slicingPlan() const
    {
        return injectors_[0]->slicingPlan();
    }

    /** Injection runs performed so far, summed over all workers. */
    std::uint64_t runsPerformed() const;

    /** Throughput/worker report for the most recent campaign. */
    const CampaignStats &lastStats() const { return stats_; }

  private:
    /** Chunk-local processing key: (cta, thread, dynIndex). */
    using SiteKey = std::array<std::uint64_t, 3>;

    /**
     * One complete campaign: journal open/replay, parallel
     * classification of the pending sites, serial in-order fold, and
     * footer sealing.  @p siteAt / @p weightAt address the campaign's
     * site list by original index; @p weighted selects the fold.
     */
    CampaignResult runCampaign(
        std::size_t count,
        const std::function<const FaultSite &(std::size_t)> &siteAt,
        const std::function<double(std::size_t)> &weightAt, bool weighted,
        const char *label);

    /**
     * Shard @p pending (original site indices) into chunks, classify
     * every pending site on the pool, and write outcomes and details
     * into @p outcomes / @p details indexed by *original* site
     * position -- so the fold never depends on scheduling.  Each chunk
     * processes its sites in ascending (cta, thread, dynIndex) order
     * (successive sites then share a CTA checkpoint), and commits its
     * records to @p journal (when non-null) from the fold point under
     * the progress lock.
     */
    void classifyPending(
        const std::vector<std::size_t> &pending,
        const std::function<const FaultSite &(std::size_t)> &siteAt,
        std::vector<Outcome> &outcomes,
        std::vector<InjectionDetail> &details, CampaignJournal *journal,
        CampaignObserver *observer);

    CampaignOptions options_;
    std::vector<std::unique_ptr<Injector>> injectors_; ///< one per worker
    ThreadPool pool_;
    CampaignStats stats_;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_CAMPAIGN_ENGINE_HH
