/**
 * @file
 * Section cache implementation (format in section_cache.hh).
 */

#include "faults/section_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "faults/campaign_journal.hh"
#include "util/logging.hh"

namespace fsp::faults {

namespace {

/** On-disk cache entry; self-checksummed, skipped (not fatal) when torn. */
struct DiskRecord
{
    std::uint64_t keyHash;
    std::uint32_t outcome;
    std::uint32_t staticIndex;
    std::uint8_t flags; ///< kDiskHasAnatomy
    std::uint8_t pattern;
    std::uint16_t pad0;
    std::uint32_t magnitude[kMagnitudeBuckets];
    std::uint32_t pad1;
    std::uint32_t checksum; ///< FNV of every preceding field
};
static_assert(sizeof(DiskRecord) == 56, "cache record layout drifted");

constexpr std::uint8_t kDiskHasAnatomy = 0x01;

std::uint32_t
diskChecksum(const DiskRecord &record)
{
    JournalHasher hasher;
    hasher.update(record.keyHash);
    hasher.update(std::uint64_t{record.outcome});
    hasher.update(std::uint64_t{record.staticIndex});
    hasher.update(std::uint64_t{record.flags});
    hasher.update(std::uint64_t{record.pattern});
    for (std::uint32_t bucket : record.magnitude)
        hasher.update(std::uint64_t{bucket});
    return static_cast<std::uint32_t>(hasher.digest());
}

/** mkdir -p. */
void
createDirectories(const std::string &dir)
{
    std::string path;
    for (std::size_t i = 0; i <= dir.size(); ++i) {
        if (i < dir.size() && dir[i] != '/') {
            path += dir[i];
            continue;
        }
        if (i < dir.size())
            path += '/';
        if (path.empty() || path == "/")
            continue;
        if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
            fatal("cannot create cache directory '", path,
                  "': ", std::strerror(errno));
        }
    }
}

} // namespace

std::uint64_t
sectionCacheKey(std::uint64_t siteHash, std::uint64_t modelHash,
                std::uint64_t seed)
{
    JournalHasher hasher;
    hasher.update(siteHash);
    hasher.update(modelHash);
    hasher.update(seed);
    return hasher.digest();
}

std::uint64_t
campaignContextHash(const sim::LaunchConfig &config,
                    const std::vector<OutputRegion> &outputs,
                    const std::vector<std::vector<std::uint8_t>> &golden)
{
    JournalHasher hasher;
    hasher.update(std::uint64_t{config.grid.x});
    hasher.update(std::uint64_t{config.grid.y});
    hasher.update(std::uint64_t{config.grid.z});
    hasher.update(std::uint64_t{config.block.x});
    hasher.update(std::uint64_t{config.block.y});
    hasher.update(std::uint64_t{config.block.z});
    hasher.update(std::uint64_t{config.sharedBytes});
    hasher.update(static_cast<std::uint64_t>(outputs.size()));
    for (const OutputRegion &region : outputs) {
        hasher.update(region.addr);
        hasher.update(region.bytes);
        hasher.update(static_cast<std::uint64_t>(region.type));
        hasher.update(region.tolerance);
        hasher.update(region.rows);
    }
    for (const auto &bytes : golden) {
        hasher.update(static_cast<std::uint64_t>(bytes.size()));
        hasher.update(bytes.data(), bytes.size());
    }
    return hasher.digest();
}

void
SectionIndex::addThread(std::uint64_t thread,
                        const std::vector<sim::DynRecord> &trace,
                        sim::SectionedTrace sectioned)
{
    FSP_ASSERT(sectioned.sectionOf.size() == trace.size(),
               "sectioned trace does not match the dyn trace");
    ThreadIndex index;
    index.sectioned = std::move(sectioned);
    index.staticIndexOf.reserve(trace.size());
    index.injectable.reserve(trace.size());
    for (const sim::DynRecord &record : trace) {
        index.staticIndexOf.push_back(record.staticIndex);
        index.injectable.push_back(
            record.executed() && record.destBits != 0 ? 1 : 0);
    }
    threads_[thread] = std::move(index);
}

std::size_t
SectionIndex::sectionCount() const
{
    std::size_t total = 0;
    for (const auto &[thread, index] : threads_)
        total += index.sectioned.sections.size();
    return total;
}

std::optional<SiteSectionKey>
SectionIndex::keyFor(const FaultSite &site) const
{
    auto it = threads_.find(site.thread);
    if (it == threads_.end())
        return std::nullopt;
    const ThreadIndex &index = it->second;
    if (site.dynIndex >= index.staticIndexOf.size() ||
        !index.injectable[site.dynIndex]) {
        return std::nullopt;
    }
    const auto dyn = static_cast<std::size_t>(site.dynIndex);
    const sim::TraceSection &section =
        index.sectioned.sections[index.sectioned.sectionOf[dyn]];

    SiteSectionKey key;
    JournalHasher bucket;
    bucket.update(context_hash_);
    bucket.update(section.contentHash);
    bucket.update(section.prefixStateHash);
    key.sectionHash = bucket.digest();

    JournalHasher entry;
    entry.update(section.tailContentHash);
    entry.update(site.thread);
    entry.update(std::uint64_t{index.sectioned.writeOffsetOf[dyn]});
    entry.update(std::uint64_t{site.bit});
    key.siteHash = entry.digest();

    key.staticIndex = index.staticIndexOf[dyn];
    return key;
}

SectionCache::SectionCache(std::string dir) : dir_(std::move(dir))
{
    FSP_ASSERT(!dir_.empty(), "section cache needs a directory");
    createDirectories(dir_);
}

std::string
SectionCache::bucketPath(std::uint64_t sectionHash) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "sec-%016llx.fspc",
                  static_cast<unsigned long long>(sectionHash));
    return dir_ + "/" + name;
}

SectionCache::Bucket &
SectionCache::bucket(std::uint64_t sectionHash)
{
    Bucket &bucket = buckets_[sectionHash];
    if (!bucket.loaded)
        loadBucket(sectionHash, bucket);
    return bucket;
}

void
SectionCache::loadBucket(std::uint64_t sectionHash, Bucket &bucket)
{
    bucket.loaded = true;
    int fd = ::open(bucketPath(sectionHash).c_str(), O_RDONLY);
    if (fd < 0)
        return; // never written: every lookup in it misses

    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // unreadable tail: treat the rest as missing
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
    stats_.bytesRead += bytes.size();

    // Whole records only; a torn trailing append or a flipped byte is
    // a skipped record (= a miss), never a failure -- the cache is an
    // accelerator, and re-injection always produces the right answer.
    for (std::size_t offset = 0; offset + sizeof(DiskRecord) <= bytes.size();
         offset += sizeof(DiskRecord)) {
        DiskRecord record;
        std::memcpy(&record, bytes.data() + offset, sizeof(record));
        if (record.checksum != diskChecksum(record) ||
            record.outcome >
                static_cast<std::uint32_t>(Outcome::Invalid) ||
            record.pattern >= kNumSdcPatterns ||
            (record.flags & ~kDiskHasAnatomy) != 0) {
            stats_.corruptRecords++;
            continue;
        }
        SectionCacheRecord entry;
        entry.outcome = static_cast<Outcome>(record.outcome);
        entry.staticIndex = record.staticIndex;
        entry.hasAnatomy = (record.flags & kDiskHasAnatomy) != 0;
        if (entry.hasAnatomy) {
            entry.anatomy.pattern =
                static_cast<SdcPattern>(record.pattern);
            for (std::size_t i = 0; i < kMagnitudeBuckets; ++i)
                entry.anatomy.magnitude[i] = record.magnitude[i];
        }
        bucket.entries[record.keyHash] = entry;
    }
    if (bytes.size() % sizeof(DiskRecord) != 0)
        stats_.corruptRecords++;
}

std::optional<SectionCacheRecord>
SectionCache::lookup(std::uint64_t sectionHash, std::uint64_t keyHash)
{
    Bucket &b = bucket(sectionHash);
    auto it = b.entries.find(keyHash);
    if (it == b.entries.end()) {
        stats_.misses++;
        return std::nullopt;
    }
    stats_.hits++;
    return it->second;
}

void
SectionCache::store(std::uint64_t sectionHash, std::uint64_t keyHash,
                    const SectionCacheRecord &record)
{
    Bucket &b = bucket(sectionHash);
    auto [it, inserted] = b.entries.emplace(keyHash, record);
    if (!inserted)
        return; // already cached (or stored twice); entries never change
    DiskRecord disk{};
    disk.keyHash = keyHash;
    disk.outcome = static_cast<std::uint32_t>(record.outcome);
    disk.staticIndex = record.staticIndex;
    if (record.hasAnatomy) {
        disk.flags = kDiskHasAnatomy;
        disk.pattern = static_cast<std::uint8_t>(record.anatomy.pattern);
        for (std::size_t i = 0; i < kMagnitudeBuckets; ++i)
            disk.magnitude[i] = record.anatomy.magnitude[i];
    }
    disk.checksum = diskChecksum(disk);
    const auto *p = reinterpret_cast<const std::uint8_t *>(&disk);
    b.pending.insert(b.pending.end(), p, p + sizeof(disk));
}

void
SectionCache::flush()
{
    for (auto &[sectionHash, bucket] : buckets_) {
        if (bucket.pending.empty())
            continue;
        // One O_APPEND write per bucket: concurrent shard workers
        // interleave at whole-batch granularity, and every batch is a
        // whole number of self-checksummed records.
        int fd = ::open(bucketPath(sectionHash).c_str(),
                        O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd < 0) {
            warn("cannot append to section cache '",
                 bucketPath(sectionHash), "': ", std::strerror(errno));
            bucket.pending.clear();
            continue;
        }
        const std::uint8_t *p = bucket.pending.data();
        std::size_t size = bucket.pending.size();
        while (size > 0) {
            ssize_t n = ::write(fd, p, size);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                warn("section cache write failed: ",
                     std::strerror(errno));
                break;
            }
            stats_.bytesWritten += static_cast<std::uint64_t>(n);
            p += n;
            size -= static_cast<std::size_t>(n);
        }
        ::close(fd);
        bucket.pending.clear();
    }
}

} // namespace fsp::faults
