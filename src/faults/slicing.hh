/**
 * @file
 * CTA-independence analysis behind the sliced injection engine.
 *
 * A fault in one thread can only propagate beyond its CTA through
 * global memory.  The golden run records every CTA's global read/write
 * byte footprint; this analysis declares the kernel's CTAs independent
 * when (a) no two CTAs write a common byte and (b) no CTA reads a byte
 * another CTA writes.  Under independence, executing just the faulty
 * CTA against the pristine image is bit-identical to its execution in
 * the full grid -- the execution-engine counterpart of the paper's
 * fault-site pruning.
 *
 * The fault itself can violate the golden footprints (a corrupted
 * address register reads or writes anywhere), so independence alone is
 * not enough for exactness.  The plan therefore precomputes per-CTA
 * hazard sets that the sliced executor checks on every global access:
 *
 *  - loadHazards(c): bytes written by CTAs other than c.  A faulty
 *    load from one of these would observe a value that differs
 *    between sliced and full-grid execution.
 *  - storeHazards(c): bytes read *or* written by other CTAs.  A faulty
 *    store into one of these could perturb another CTA or be
 *    overwritten by one.
 *
 * Any access hitting a hazard aborts the sliced run (SliceHazard) and
 * the injector falls back to a full-grid run, keeping outcomes exact.
 */

#ifndef FSP_FAULTS_SLICING_HH
#define FSP_FAULTS_SLICING_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/footprint.hh"

namespace fsp::faults {

/** Per-kernel CTA-independence decision plus per-CTA hazard sets. */
class SlicingPlan
{
  public:
    /** Empty plan: not sliceable (no footprint data). */
    SlicingPlan() = default;

    /** Analyze the golden run's per-CTA footprints. */
    static SlicingPlan analyze(std::vector<sim::CtaFootprint> footprints);

    /** May injection runs execute only the faulty CTA? */
    bool independent() const { return independent_; }

    /** Human-readable decision ("cta-independent" or why not). */
    const std::string &reason() const { return reason_; }

    std::size_t ctaCount() const { return footprints_.size(); }

    const sim::CtaFootprint &
    footprint(std::size_t cta) const
    {
        return footprints_[cta];
    }

    /** Golden write footprint of @p cta. */
    const sim::IntervalSet &
    writes(std::size_t cta) const
    {
        return footprints_[cta].writes;
    }

    /** @{ Hazard sets (valid only when independent()). */
    const sim::IntervalSet &
    loadHazards(std::size_t cta) const
    {
        return load_hazards_[cta];
    }

    const sim::IntervalSet &
    storeHazards(std::size_t cta) const
    {
        return store_hazards_[cta];
    }
    /** @} */

  private:
    bool independent_ = false;
    std::string reason_ = "no footprint data";
    std::vector<sim::CtaFootprint> footprints_;
    std::vector<sim::IntervalSet> load_hazards_;
    std::vector<sim::IntervalSet> store_hazards_;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_SLICING_HH
