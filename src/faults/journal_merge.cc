/**
 * @file
 * Shard-journal merge implementation.
 */

#include "faults/journal_merge.hh"

#include <algorithm>

namespace fsp::faults {

MergeReport
mergeShardJournals(const JournalKey &key,
                   const std::vector<WeightedSite> &sites,
                   std::uint64_t modelHash,
                   const std::vector<std::string> &shardPaths,
                   const MergeOptions &options)
{
    if (shardPaths.empty())
        throw JournalError("merge needs at least one shard journal");
    if (shardPaths.size() > ~std::uint32_t{0})
        throw JournalError("too many shard journals");

    auto shard_count = static_cast<std::uint32_t>(shardPaths.size());
    ShardPlan plan = planShards(key, sites, shard_count);

    MergeReport report;
    report.campaignHash = plan.campaignHash;
    report.campaignSites = sites.size();
    report.shards.reserve(shard_count);

    // --- Validate + replay every shard.  inspect() enforces the
    // shard-local identity (header hash over the sub-list); the
    // extension check then pins the shard to THIS campaign's geometry.
    std::vector<CampaignJournal::Resume> resumes;
    resumes.reserve(shard_count);
    for (std::uint32_t s = 0; s < shard_count; ++s) {
        const ShardPlanEntry &entry = plan.shards[s];
        CampaignJournal::Resume resume = CampaignJournal::inspect(
            shardPaths[s], entry.headerHash, modelHash,
            entry.sites.size());
        if (!resume.shard) {
            throw JournalError(
                "journal '" + shardPaths[s] +
                "' has no shard extension: it is not a shard journal");
        }
        if (!(*resume.shard == entry.info)) {
            throw JournalError(
                "journal '" + shardPaths[s] +
                "' is shard " + std::to_string(resume.shard->shardIndex) +
                "/" + std::to_string(resume.shard->shardCount) +
                " at offset " + std::to_string(resume.shard->siteOffset) +
                ", expected shard " + std::to_string(s) + "/" +
                std::to_string(shard_count) + " at offset " +
                std::to_string(entry.info.siteOffset) +
                " of this campaign");
        }
        ShardMergeInfo info;
        info.path = shardPaths[s];
        info.sites = entry.sites.size();
        info.done = resume.doneCount;
        info.complete = resume.complete;
        report.sitesDone += resume.doneCount;
        if (resume.complete) {
            report.phases.replaySeconds += resume.footer.replaySeconds;
            report.phases.injectSeconds += resume.footer.injectSeconds;
            report.phases.foldSeconds += resume.footer.foldSeconds;
            report.phases.workers =
                std::max(report.phases.workers, resume.footer.workers);
        }
        report.shards.push_back(std::move(info));
        resumes.push_back(std::move(resume));
    }

    report.complete = report.sitesDone == report.campaignSites;
    if (options.requireComplete && !report.complete) {
        for (std::uint32_t s = 0; s < shard_count; ++s) {
            if (report.shards[s].done < report.shards[s].sites) {
                throw JournalError(
                    "journal '" + shardPaths[s] + "' is incomplete (" +
                    std::to_string(report.shards[s].done) + " of " +
                    std::to_string(report.shards[s].sites) +
                    " sites classified); rerun the shard or merge with "
                    "requireComplete off");
            }
        }
    }

    // --- Serial fold in GLOBAL site order -- the exact fold of
    // CampaignEngine::runCampaign, so dist/runs/anatomy accumulate in
    // the same order with the same weights, bit for bit.  With the
    // contiguous plan, global order is simply shard order then
    // shard-local order.
    for (std::uint32_t s = 0; s < shard_count; ++s) {
        const ShardPlanEntry &entry = plan.shards[s];
        const CampaignJournal::Resume &resume = resumes[s];
        for (std::size_t i = 0; i < entry.sites.size(); ++i) {
            if (!resume.done[i])
                continue;
            Outcome outcome = resume.outcomes[i];
            double weight = entry.sites[i].weight;
            report.result.dist.add(outcome, weight);
            report.result.runs++;
            if (outcome != Outcome::Invalid) {
                const InjectionDetail &detail = resume.details[i];
                report.result.anatomy.addRun(
                    outcome, weight, detail.staticIndex,
                    detail.hasAnatomy ? &detail.anatomy : nullptr);
            }
        }
    }
    report.phases.sitesDone = report.sitesDone;
    if (report.phases.injectSeconds > 0.0) {
        report.phases.sitesPerSecond =
            static_cast<double>(report.sitesDone) /
            report.phases.injectSeconds;
    }

    // --- Optionally emit the merged single-campaign journal: every
    // record re-addressed to its global index under the campaign's own
    // (unsharded) identity.
    if (!options.mergedJournalPath.empty()) {
        CampaignJournal merged = CampaignJournal::create(
            options.mergedJournalPath, plan.campaignHash, modelHash,
            sites.size());
        for (std::uint32_t s = 0; s < shard_count; ++s) {
            const ShardPlanEntry &entry = plan.shards[s];
            const CampaignJournal::Resume &resume = resumes[s];
            for (std::size_t i = 0; i < entry.sites.size(); ++i) {
                if (!resume.done[i])
                    continue;
                merged.append(entry.info.siteOffset + i,
                              resume.outcomes[i], resume.details[i]);
            }
            merged.commitChunk();
        }
        if (report.complete)
            merged.writeFooter(report.phases);
    }
    return report;
}

} // namespace fsp::faults
