/**
 * @file
 * Outcome tally implementation.
 */

#include "faults/outcome.hh"

#include <cstdio>

#include "util/logging.hh"

namespace fsp::faults {

std::string
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked: return "masked";
      case Outcome::SDC: return "sdc";
      case Outcome::Other: return "other";
      case Outcome::Invalid: return "invalid";
    }
    panic("unreachable Outcome");
}

void
OutcomeDist::add(Outcome outcome, double weight)
{
    addWeight(outcome, weight);
    runs_++;
}

void
OutcomeDist::addWeight(Outcome outcome, double weight)
{
    FSP_ASSERT(weight >= 0.0, "negative outcome weight");
    switch (outcome) {
      case Outcome::Masked:
        masked_ += weight;
        break;
      case Outcome::SDC:
        sdc_ += weight;
        break;
      case Outcome::Other:
        other_ += weight;
        break;
      case Outcome::Invalid:
        invalid_ += weight;
        break;
    }
}

void
OutcomeDist::merge(const OutcomeDist &other)
{
    masked_ += other.masked_;
    sdc_ += other.sdc_;
    other_ += other.other_;
    invalid_ += other.invalid_;
    runs_ += other.runs_;
}

double
OutcomeDist::weightOf(Outcome outcome) const
{
    switch (outcome) {
      case Outcome::Masked: return masked_;
      case Outcome::SDC: return sdc_;
      case Outcome::Other: return other_;
      case Outcome::Invalid: return invalid_;
    }
    panic("unreachable Outcome");
}

double
OutcomeDist::fraction(Outcome outcome) const
{
    double t = total();
    return t > 0.0 ? weightOf(outcome) / t : 0.0;
}

std::vector<double>
OutcomeDist::fractions() const
{
    return {fraction(Outcome::Masked), fraction(Outcome::SDC),
            fraction(Outcome::Other)};
}

std::string
OutcomeDist::summary() const
{
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "masked %6.2f%% | sdc %6.2f%% | other %6.2f%%  (n=%llu)",
                  100.0 * fraction(Outcome::Masked),
                  100.0 * fraction(Outcome::SDC),
                  100.0 * fraction(Outcome::Other),
                  static_cast<unsigned long long>(runs_));
    std::string text = buf;
    if (invalid_ > 0.0) {
        std::snprintf(buf, sizeof(buf), " [invalid weight %.6g]", invalid_);
        text += buf;
    }
    return text;
}

} // namespace fsp::faults
