/**
 * @file
 * Durable campaign sessions: an append-only, integrity-checked on-disk
 * journal of completed injection outcomes.
 *
 * A statistical baseline at the paper's scale is 60K injection runs
 * per kernel, and pruned campaigns grow multi-hour as kernels are
 * added -- yet a killed process used to lose every completed outcome.
 * The journal makes campaigns preemption-safe: the engine appends one
 * fixed-size binary record per classified site and fsyncs the batch at
 * every chunk fold point, so a restarted campaign replays the recorded
 * outcomes, injects only the remaining sites, and still folds a
 * bit-identical resilience profile (the fold always runs serially in
 * site order over the full outcome vector, no matter which outcomes
 * came from disk).
 *
 * File layout (native endianness; a journal is machine-local state,
 * not an interchange format):
 *
 *   [JournalHeader]  magic, header hash, model hash, site count,
 *                    checksum
 *   [JournalShardExt] optional; present only on shard journals of a
 *                    sharded campaign (see shard_plan.hh): the parent
 *                    campaign's identity hash, this shard's index and
 *                    count, and the shard's global site offset
 *   [JournalRecord]* one per completed site, any order, no duplicates;
 *                    each carries the outcome plus the injection
 *                    detail (static instruction index, SDC anatomy)
 *                    and whether the outcome was replayed from the
 *                    section cache instead of injected
 *   [SectionSummary]* optional; per trace section touched by the
 *                    campaign: site/outcome/SDC-pattern tallies, the
 *                    cache-hit count, and the section's propagation
 *                    (tail) hash -- written by the engine when a
 *                    section index is attached, before the footer
 *   [JournalFooter]  optional; present only on completed campaigns,
 *                    carries per-phase wall time and throughput
 *
 * The header hash is computed over the campaign's identity -- the full
 * site list with weights, the caller's kernel/config tag, and the
 * seed -- so a journal can never be resumed against a different
 * campaign.  The model hash is the fault model's identity hash
 * (FaultModel::identityHash()), checked separately so resuming under a
 * different model fails with a message naming the actual problem.
 * Every record and the footer carry a checksum mixed with the header
 * hash; truncated or corrupted entries are rejected with a clear error
 * rather than silently dropped (recovery from a torn file is: delete
 * the journal and rerun).
 */

#ifndef FSP_FAULTS_CAMPAIGN_JOURNAL_HH
#define FSP_FAULTS_CAMPAIGN_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_site.hh"
#include "faults/outcome.hh"
#include "faults/sdc_anatomy.hh"

namespace fsp::faults {

/** Any journal validation or I/O failure (message explains which). */
class JournalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Incremental FNV-1a 64-bit hasher; the journal's sole integrity
 * primitive (headers, records, footers and the campaign-identity
 * hash all use it).
 */
class JournalHasher
{
  public:
    void update(const void *bytes, std::size_t size);
    void update(std::string_view text);
    void update(std::uint64_t value);
    void update(double value);

    std::uint64_t digest() const { return state_; }

  private:
    std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

/** The campaign identity folded into the journal header hash. */
struct JournalKey
{
    /** Free-form campaign tag (kernel name, scale, pruning config). */
    std::string tag;

    /** Master seed of the campaign. */
    std::uint64_t seed = 0;
};

/**
 * Identity of one shard of a sharded campaign, sealed into the shard
 * journal's extension block right after the header.  Record indices in
 * a shard journal are shard-local (0 .. shard size); siteOffset maps
 * them back to positions in the parent campaign's site list.
 */
struct ShardInfo
{
    std::uint64_t campaignHash = 0;  ///< header hash of the FULL site list
    std::uint64_t siteOffset = 0;    ///< global index of the shard's first site
    std::uint64_t campaignSites = 0; ///< full campaign site count
    std::uint32_t shardIndex = 0;    ///< this shard, in [0, shardCount)
    std::uint32_t shardCount = 1;

    bool operator==(const ShardInfo &other) const = default;
};

/**
 * Per-section campaign summary sealed into the journal (format v3):
 * how one trace section's fault sites classified, how many of them the
 * section cache satisfied, and the section's identity/propagation
 * hashes.  Purely observational -- replay and merge correctness never
 * depend on these blocks -- but they let `fsp` report incremental
 * reuse per section and survive restarts with the journal.
 */
struct JournalSectionSummary
{
    std::uint64_t sectionHash = 0; ///< cache bucket (context+content+prefix)
    std::uint64_t tailHash = 0;    ///< propagation (tail content) hash
    std::uint64_t thread = 0;      ///< traced thread owning the section
    std::uint32_t firstRecord = 0; ///< first dyn record of the section
    std::uint32_t recordCount = 0;
    std::uint32_t sites = 0;       ///< campaign sites in this section
    std::uint32_t cachedSites = 0; ///< satisfied from the section cache
    std::uint32_t outcomes[4] = {}; ///< tally per Outcome value
    std::uint32_t sdcPatterns[kNumSdcPatterns] = {}; ///< per SdcPattern

    bool operator==(const JournalSectionSummary &other) const = default;
};

/** @{ Header hash over the campaign identity and its full site list. */
std::uint64_t
journalHeaderHash(const JournalKey &key, std::size_t count,
                  const std::function<const FaultSite &(std::size_t)> &siteAt,
                  const std::function<double(std::size_t)> &weightAt);
std::uint64_t journalHeaderHash(const JournalKey &key,
                                const std::vector<WeightedSite> &sites);
std::uint64_t journalHeaderHash(const JournalKey &key,
                                const std::vector<FaultSite> &sites);
/** @} */

/**
 * Append-only journal of campaign outcomes.  Writers append records
 * (buffered) and make them durable with commitChunk(); a completed
 * campaign seals the file with writeFooter().  All validation happens
 * in openOrResume().
 */
class CampaignJournal
{
  public:
    /** Per-phase wall time and throughput sealed into the footer. */
    struct Phases
    {
        double replaySeconds = 0.0; ///< journal open + outcome replay
        double injectSeconds = 0.0; ///< parallel classification
        double foldSeconds = 0.0;   ///< serial outcome fold
        double sitesPerSecond = 0.0;
        std::uint64_t sitesDone = 0;
        std::uint32_t workers = 0;
    };

    /** What openOrResume() recovered from an existing journal. */
    struct Resume
    {
        /** Per-site outcome; meaningful where done[i] is set. */
        std::vector<Outcome> outcomes;

        /** Per-site detail (static index, anatomy); same validity. */
        std::vector<InjectionDetail> details;

        std::vector<bool> done; ///< one flag per site
        std::uint64_t doneCount = 0;

        /**
         * Per-site flag: the recorded outcome was replayed from the
         * section cache rather than injected (same validity as done).
         * Preserved across resume and shard merge so incremental-reuse
         * accounting survives restarts.
         */
        std::vector<bool> cached;
        std::uint64_t cachedCount = 0;

        bool complete = false; ///< a valid footer was found
        Phases footer;         ///< valid when complete

        /** Present when the file carries a shard extension block. */
        std::optional<ShardInfo> shard;

        /** Section summaries found in the journal, in file order. */
        std::vector<JournalSectionSummary> sections;
    };

    /**
     * Start a fresh journal at @p path (truncating any existing file)
     * for a campaign of @p siteCount sites identified by
     * @p headerHash, run under the fault model identified by
     * @p modelHash (FaultModel::identityHash()).  When @p shard is
     * non-null the journal is one shard of a sharded campaign and the
     * shard extension block is sealed right after the header.  The
     * header (and extension) are durable on return.
     */
    static CampaignJournal create(const std::string &path,
                                  std::uint64_t headerHash,
                                  std::uint64_t modelHash,
                                  std::uint64_t siteCount,
                                  const ShardInfo *shard = nullptr);

    /**
     * Open an existing journal, validate its header against
     * @p headerHash / @p modelHash / @p siteCount, replay every record
     * into @p resume, and position the file for further appends -- or
     * create a fresh journal when @p path does not exist.  Throws
     * JournalError on a stale header hash, a fault-model mismatch, a
     * site-count mismatch, or any truncated/corrupted record.
     */
    static CampaignJournal openOrResume(const std::string &path,
                                        std::uint64_t headerHash,
                                        std::uint64_t modelHash,
                                        std::uint64_t siteCount,
                                        Resume &resume);

    /**
     * Read-only validation and replay: open @p path, run exactly the
     * openOrResume() validation against @p headerHash / @p modelHash /
     * @p siteCount and return the replayed Resume without keeping a
     * writer open.  Unlike openOrResume(), a missing file is an error
     * (JournalError naming the path) -- inspection never creates.
     * This is what the journal-merge validator and `fsp merge` use.
     */
    static Resume inspect(const std::string &path,
                          std::uint64_t headerHash,
                          std::uint64_t modelHash,
                          std::uint64_t siteCount);

    CampaignJournal(CampaignJournal &&other) noexcept;
    CampaignJournal &operator=(CampaignJournal &&other) noexcept;
    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;
    ~CampaignJournal();

    /**
     * Buffer one completed site's record (durable after commitChunk).
     * @p fromCache marks an outcome replayed from the section cache
     * rather than injected (carried in the record's flag byte).
     */
    void append(std::uint64_t siteIndex, Outcome outcome,
                const InjectionDetail &detail = {},
                bool fromCache = false);

    /** Buffer one per-section summary block (durable after commit). */
    void appendSectionSummary(const JournalSectionSummary &summary);

    /** What one commit made durable (observability, not control flow). */
    struct CommitInfo
    {
        std::uint64_t records = 0; ///< records flushed by this commit
        std::uint64_t bytes = 0;   ///< bytes written by this commit
    };

    /**
     * Write all buffered records in one append and fsync them --
     * called from the campaign engine's chunk fold point, so a kill
     * between commits loses at most the in-flight chunks.
     */
    CommitInfo commitChunk();

    /**
     * Seal a completed campaign: commit, append the footer, fsync.
     * The returned CommitInfo covers the whole seal (inner commit's
     * records; its bytes plus the footer's).
     */
    CommitInfo writeFooter(const Phases &phases);

    /** Records made durable by this writer (excludes buffered ones). */
    std::uint64_t committedRecords() const { return committed_; }

    const std::string &path() const { return path_; }

  private:
    CampaignJournal(std::string path, int fd, std::uint64_t headerHash);

    void writeAll(const void *bytes, std::size_t size);
    void syncToDisk();

    std::string path_;
    int fd_ = -1;
    std::uint64_t header_hash_ = 0;
    std::vector<std::uint8_t> pending_; ///< serialized unflushed entries
    std::uint64_t pending_records_ = 0; ///< site records in pending_
    std::uint64_t committed_ = 0;
};

} // namespace fsp::faults

#endif // FSP_FAULTS_CAMPAIGN_JOURNAL_HH
