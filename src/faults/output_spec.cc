/**
 * @file
 * Output capture and tolerance-aware comparison.
 */

#include "faults/output_spec.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "util/logging.hh"

namespace fsp::faults {

std::vector<std::vector<std::uint8_t>>
captureOutputs(const sim::GlobalMemory &memory,
               const std::vector<OutputRegion> &regions)
{
    std::vector<std::vector<std::uint8_t>> captured;
    captured.reserve(regions.size());
    for (const auto &region : regions)
        captured.push_back(memory.snapshot(region.addr, region.bytes));
    return captured;
}

namespace {

template <typename T>
bool
elementsMatch(const std::uint8_t *a, const std::uint8_t *b,
              std::size_t bytes, double tolerance)
{
    std::size_t count = bytes / sizeof(T);
    for (std::size_t i = 0; i < count; ++i) {
        T va, vb;
        std::memcpy(&va, a + i * sizeof(T), sizeof(T));
        std::memcpy(&vb, b + i * sizeof(T), sizeof(T));
        if constexpr (std::is_floating_point_v<T>) {
            if (va == vb)
                continue;
            if (std::isnan(va) || std::isnan(vb) || std::isinf(va) ||
                std::isinf(vb)) {
                return false;
            }
            double da = va, db = vb;
            double scale = std::max({1.0, std::fabs(da), std::fabs(db)});
            if (std::fabs(da - db) > tolerance * scale)
                return false;
        } else {
            if (va != vb)
                return false;
        }
    }
    // Tail bytes (if the region is not a multiple of the element size)
    // are compared exactly.
    std::size_t tail = bytes % sizeof(T);
    return std::memcmp(a + bytes - tail, b + bytes - tail, tail) == 0;
}

} // namespace

bool
outputsMatch(const std::vector<OutputRegion> &regions,
             const std::vector<std::vector<std::uint8_t>> &golden,
             const std::vector<std::vector<std::uint8_t>> &test)
{
    FSP_ASSERT(golden.size() == regions.size() &&
                   test.size() == regions.size(),
               "output capture arity mismatch");
    for (std::size_t r = 0; r < regions.size(); ++r) {
        const auto &region = regions[r];
        const auto &g = golden[r];
        const auto &t = test[r];
        FSP_ASSERT(g.size() == region.bytes && t.size() == region.bytes,
                   "output capture size mismatch");
        bool ok = true;
        switch (region.type) {
          case ElemType::U32:
            ok = elementsMatch<std::uint32_t>(g.data(), t.data(), g.size(),
                                              0.0);
            break;
          case ElemType::F32:
            if (region.tolerance == 0.0) {
                ok = std::memcmp(g.data(), t.data(), g.size()) == 0;
            } else {
                ok = elementsMatch<float>(g.data(), t.data(), g.size(),
                                          region.tolerance);
            }
            break;
          case ElemType::F64:
            if (region.tolerance == 0.0) {
                ok = std::memcmp(g.data(), t.data(), g.size()) == 0;
            } else {
                ok = elementsMatch<double>(g.data(), t.data(), g.size(),
                                           region.tolerance);
            }
            break;
          case ElemType::Raw:
            ok = std::memcmp(g.data(), t.data(), g.size()) == 0;
            break;
        }
        if (!ok)
            return false;
    }
    return true;
}

} // namespace fsp::faults
