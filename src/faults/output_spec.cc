/**
 * @file
 * Output capture and tolerance-aware comparison.
 */

#include "faults/output_spec.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <type_traits>

#include "util/logging.hh"

namespace fsp::faults {

std::vector<std::vector<std::uint8_t>>
captureOutputs(const sim::GlobalMemory &memory,
               const std::vector<OutputRegion> &regions)
{
    std::vector<std::vector<std::uint8_t>> captured;
    captured.reserve(regions.size());
    for (const auto &region : regions)
        captured.push_back(memory.snapshot(region.addr, region.bytes));
    return captured;
}

namespace {

template <typename T>
bool
elementsMatch(const std::uint8_t *a, const std::uint8_t *b,
              std::size_t bytes, double tolerance)
{
    std::size_t count = bytes / sizeof(T);
    for (std::size_t i = 0; i < count; ++i) {
        T va, vb;
        std::memcpy(&va, a + i * sizeof(T), sizeof(T));
        std::memcpy(&vb, b + i * sizeof(T), sizeof(T));
        if constexpr (std::is_floating_point_v<T>) {
            if (va == vb)
                continue;
            if (std::isnan(va) || std::isnan(vb) || std::isinf(va) ||
                std::isinf(vb)) {
                return false;
            }
            double da = va, db = vb;
            double scale = std::max({1.0, std::fabs(da), std::fabs(db)});
            if (std::fabs(da - db) > tolerance * scale)
                return false;
        } else {
            if (va != vb)
                return false;
        }
    }
    // Tail bytes (if the region is not a multiple of the element size)
    // are compared exactly.
    std::size_t tail = bytes % sizeof(T);
    return std::memcmp(a + bytes - tail, b + bytes - tail, tail) == 0;
}

template <typename T>
double
relativeError(T va, T vb)
{
    double da = static_cast<double>(va);
    double db = static_cast<double>(vb);
    if (std::isnan(da) || std::isnan(db) || std::isinf(da) ||
        std::isinf(db)) {
        return std::numeric_limits<double>::infinity();
    }
    double scale = std::max({1.0, std::fabs(da), std::fabs(db)});
    return std::fabs(da - db) / scale;
}

/**
 * Element-wise diff mirroring elementsMatch(): @p exact forces bitwise
 * comparison (integer types, Raw, and floats under tolerance 0).
 */
template <typename T>
void
diffElements(const std::uint8_t *a, const std::uint8_t *b,
             std::size_t bytes, double tolerance, bool exact,
             std::vector<ElementDiff> &out)
{
    std::size_t count = bytes / sizeof(T);
    for (std::size_t i = 0; i < count; ++i) {
        T va, vb;
        std::memcpy(&va, a + i * sizeof(T), sizeof(T));
        std::memcpy(&vb, b + i * sizeof(T), sizeof(T));
        bool corrupted;
        if (exact) {
            corrupted =
                std::memcmp(a + i * sizeof(T), b + i * sizeof(T),
                            sizeof(T)) != 0;
        } else if constexpr (std::is_floating_point_v<T>) {
            if (va == vb) {
                corrupted = false;
            } else if (std::isnan(va) || std::isnan(vb) ||
                       std::isinf(va) || std::isinf(vb)) {
                corrupted = true;
            } else {
                double da = va, db = vb;
                double scale =
                    std::max({1.0, std::fabs(da), std::fabs(db)});
                corrupted = std::fabs(da - db) > tolerance * scale;
            }
        } else {
            corrupted = va != vb;
        }
        if (corrupted)
            out.push_back({i, relativeError(va, vb)});
    }
    // Tail bytes (regions not a multiple of the element size) compare
    // exactly and report as one trailing pseudo-element.
    std::size_t tail = bytes % sizeof(T);
    if (tail != 0 &&
        std::memcmp(a + bytes - tail, b + bytes - tail, tail) != 0) {
        out.push_back({count, std::numeric_limits<double>::infinity()});
    }
}

} // namespace

std::size_t
elemSize(ElemType type)
{
    switch (type) {
      case ElemType::U32:
      case ElemType::F32:
        return 4;
      case ElemType::F64:
        return 8;
      case ElemType::Raw:
        return 1;
    }
    return 1;
}

std::vector<ElementDiff>
diffRegion(const OutputRegion &region,
           const std::vector<std::uint8_t> &golden,
           const std::vector<std::uint8_t> &test)
{
    FSP_ASSERT(golden.size() == region.bytes && test.size() == region.bytes,
               "output capture size mismatch");
    std::vector<ElementDiff> out;
    switch (region.type) {
      case ElemType::U32:
        diffElements<std::uint32_t>(golden.data(), test.data(),
                                    golden.size(), 0.0, true, out);
        break;
      case ElemType::F32:
        diffElements<float>(golden.data(), test.data(), golden.size(),
                            region.tolerance, region.tolerance == 0.0,
                            out);
        break;
      case ElemType::F64:
        diffElements<double>(golden.data(), test.data(), golden.size(),
                             region.tolerance, region.tolerance == 0.0,
                             out);
        break;
      case ElemType::Raw:
        diffElements<std::uint8_t>(golden.data(), test.data(),
                                   golden.size(), 0.0, true, out);
        break;
    }
    return out;
}

bool
outputsMatch(const std::vector<OutputRegion> &regions,
             const std::vector<std::vector<std::uint8_t>> &golden,
             const std::vector<std::vector<std::uint8_t>> &test)
{
    FSP_ASSERT(golden.size() == regions.size() &&
                   test.size() == regions.size(),
               "output capture arity mismatch");
    for (std::size_t r = 0; r < regions.size(); ++r) {
        const auto &region = regions[r];
        const auto &g = golden[r];
        const auto &t = test[r];
        FSP_ASSERT(g.size() == region.bytes && t.size() == region.bytes,
                   "output capture size mismatch");
        bool ok = true;
        switch (region.type) {
          case ElemType::U32:
            ok = elementsMatch<std::uint32_t>(g.data(), t.data(), g.size(),
                                              0.0);
            break;
          case ElemType::F32:
            if (region.tolerance == 0.0) {
                ok = std::memcmp(g.data(), t.data(), g.size()) == 0;
            } else {
                ok = elementsMatch<float>(g.data(), t.data(), g.size(),
                                          region.tolerance);
            }
            break;
          case ElemType::F64:
            if (region.tolerance == 0.0) {
                ok = std::memcmp(g.data(), t.data(), g.size()) == 0;
            } else {
                ok = elementsMatch<double>(g.data(), t.data(), g.size(),
                                           region.tolerance);
            }
            break;
          case ElemType::Raw:
            ok = std::memcmp(g.data(), t.data(), g.size()) == 0;
            break;
        }
        if (!ok)
            return false;
    }
    return true;
}

} // namespace fsp::faults
