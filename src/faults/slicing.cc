/**
 * @file
 * CTA-independence analysis implementation.
 *
 * All checks are byte-exact interval algebra over the golden
 * footprints.  The per-CTA hazard sets are derived from three global
 * aggregates (all writes, all reads, multiply-read bytes) so the cost
 * stays linear in the total number of footprint ranges rather than
 * quadratic in the CTA count:
 *
 *   loadHazards(c)  = allWrites \ writes(c)
 *   readsOfOthers(c) = allReads \ (reads(c) \ sharedReads)
 *   storeHazards(c) = loadHazards(c) u readsOfOthers(c)
 *
 * where sharedReads is the set of bytes read by two or more CTAs
 * (a byte read only by c is exactly a byte of reads(c) \ sharedReads).
 */

#include "faults/slicing.hh"

#include <algorithm>
#include <cstdio>

namespace fsp::faults {

namespace {

using sim::Interval;
using sim::IntervalSet;

/** An interval tagged with its owning CTA. */
struct OwnedInterval
{
    Interval iv;
    std::uint64_t owner;
};

/** Format an "owner A vs owner B at 0x..." collision description. */
std::string
collisionText(const char *kind, std::uint64_t a, std::uint64_t b,
              std::uint64_t addr)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s: CTA %llu vs CTA %llu at 0x%llx",
                  kind, static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(addr));
    return buf;
}

/** Collect every CTA's intervals of one footprint side, tagged. */
std::vector<OwnedInterval>
collectOwned(const std::vector<sim::CtaFootprint> &footprints,
             bool writes)
{
    std::vector<OwnedInterval> owned;
    for (std::uint64_t cta = 0; cta < footprints.size(); ++cta) {
        const IntervalSet &set =
            writes ? footprints[cta].writes : footprints[cta].reads;
        for (const Interval &iv : set.ranges())
            owned.push_back({iv, cta});
    }
    std::sort(owned.begin(), owned.end(),
              [](const OwnedInterval &a, const OwnedInterval &b) {
                  return a.iv.begin < b.iv.begin;
              });
    return owned;
}

/**
 * Find a pair of overlapping intervals with distinct owners in a
 * begin-sorted list.  Tracks the two farthest-reaching open intervals
 * with distinct owners, which is sufficient: any cross-owner overlap
 * involves the current interval and one of those two.
 *
 * @return true and fills @p out when a collision exists.
 */
bool
findCrossOwnerOverlap(const std::vector<OwnedInterval> &sorted,
                      std::pair<std::uint64_t, std::uint64_t> &owners,
                      std::uint64_t &addr)
{
    std::uint64_t max_end1 = 0, owner1 = 0; // farthest end seen
    std::uint64_t max_end2 = 0, owner2 = 0; // farthest with other owner
    bool have1 = false, have2 = false;

    for (const OwnedInterval &cur : sorted) {
        if (have1 && cur.iv.begin < max_end1 && owner1 != cur.owner) {
            owners = {owner1, cur.owner};
            addr = cur.iv.begin;
            return true;
        }
        if (have2 && cur.iv.begin < max_end2 && owner2 != cur.owner) {
            owners = {owner2, cur.owner};
            addr = cur.iv.begin;
            return true;
        }
        if (!have1 || cur.iv.end > max_end1) {
            if (have1 && owner1 != cur.owner &&
                (!have2 || max_end1 > max_end2)) {
                max_end2 = max_end1;
                owner2 = owner1;
                have2 = true;
            }
            max_end1 = cur.iv.end;
            owner1 = cur.owner;
            have1 = true;
        } else if (cur.owner != owner1 &&
                   (!have2 || cur.iv.end > max_end2)) {
            max_end2 = cur.iv.end;
            owner2 = cur.owner;
            have2 = true;
        }
    }
    return false;
}

/** Bytes covered by two or more of the (per-owner disjoint) sets. */
IntervalSet
multiplyCovered(const std::vector<OwnedInterval> &sorted)
{
    // Event sweep: +1 at begin, -1 at end; emit where coverage >= 2.
    std::vector<std::pair<std::uint64_t, int>> events;
    events.reserve(2 * sorted.size());
    for (const OwnedInterval &o : sorted) {
        events.emplace_back(o.iv.begin, +1);
        events.emplace_back(o.iv.end, -1);
    }
    std::sort(events.begin(), events.end());

    IntervalSet shared;
    int coverage = 0;
    std::uint64_t open = 0;
    for (const auto &[pos, delta] : events) {
        int next = coverage + delta;
        if (coverage < 2 && next >= 2)
            open = pos;
        else if (coverage >= 2 && next < 2)
            shared.add(open, pos);
        coverage = next;
    }
    return shared;
}

} // namespace

SlicingPlan
SlicingPlan::analyze(std::vector<sim::CtaFootprint> footprints)
{
    SlicingPlan plan;
    plan.footprints_ = std::move(footprints);
    const std::size_t n = plan.footprints_.size();

    if (n <= 1) {
        plan.reason_ = "single-CTA launch (nothing to slice)";
        return plan;
    }

    // (a) No two CTAs may write a common byte: write-write overlap
    // makes the final value order-dependent and byte ownership
    // ambiguous.
    auto writes = collectOwned(plan.footprints_, /*writes=*/true);
    std::pair<std::uint64_t, std::uint64_t> owners;
    std::uint64_t addr = 0;
    if (findCrossOwnerOverlap(writes, owners, addr)) {
        plan.reason_ = collisionText("write-write overlap", owners.first,
                                     owners.second, addr);
        return plan;
    }

    // (b) No CTA may read a byte another CTA writes (cross-CTA
    // communication through global memory).  Writes are globally
    // disjoint here, so a sorted scan against each read suffices.
    auto reads = collectOwned(plan.footprints_, /*writes=*/false);
    for (const OwnedInterval &r : reads) {
        auto it = std::upper_bound(
            writes.begin(), writes.end(), r.iv.begin,
            [](std::uint64_t v, const OwnedInterval &w) {
                return v < w.iv.end;
            });
        for (; it != writes.end() && it->iv.begin < r.iv.end; ++it) {
            if (it->owner != r.owner) {
                plan.reason_ =
                    collisionText("cross-CTA read-after-write", r.owner,
                                  it->owner, std::max(r.iv.begin,
                                                      it->iv.begin));
                return plan;
            }
        }
    }

    plan.independent_ = true;
    plan.reason_ = "cta-independent";

    // Hazard sets, from three global aggregates.
    IntervalSet all_writes;
    for (const auto &fp : plan.footprints_)
        all_writes.unionWith(fp.writes);
    IntervalSet all_reads;
    for (const auto &fp : plan.footprints_)
        all_reads.unionWith(fp.reads);
    IntervalSet shared_reads = multiplyCovered(reads);

    plan.load_hazards_.reserve(n);
    plan.store_hazards_.reserve(n);
    for (std::size_t cta = 0; cta < n; ++cta) {
        plan.load_hazards_.push_back(
            all_writes.subtract(plan.footprints_[cta].writes));

        IntervalSet exclusive_reads =
            plan.footprints_[cta].reads.subtract(shared_reads);
        IntervalSet reads_of_others = all_reads.subtract(exclusive_reads);
        reads_of_others.unionWith(plan.load_hazards_.back());
        plan.store_hazards_.push_back(std::move(reads_of_others));
    }
    return plan;
}

} // namespace fsp::faults
