/**
 * @file
 * Wire protocol implementation.
 */

#include "service/protocol.hh"

#include <cstring>

namespace fsp::service {

namespace {

/** Cap on decoded site-list lengths: a list must fit its frame. */
constexpr std::uint64_t kMaxSpecSites =
    kMaxFramePayload / 28; // 28 = encoded bytes per site

} // namespace

std::uint8_t
WireReader::u8()
{
    if (size_ - offset_ < 1)
        throw ProtocolError("truncated frame: expected u8");
    return data_[offset_++];
}

std::uint32_t
WireReader::u32()
{
    if (size_ - offset_ < 4)
        throw ProtocolError("truncated frame: expected u32");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
    offset_ += 4;
    return value;
}

std::uint64_t
WireReader::u64()
{
    if (size_ - offset_ < 8)
        throw ProtocolError("truncated frame: expected u64");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
    offset_ += 8;
    return value;
}

double
WireReader::f64()
{
    std::uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
WireReader::str()
{
    std::uint32_t length = u32();
    if (size_ - offset_ < length)
        throw ProtocolError("truncated frame: string of " +
                            std::to_string(length) + " bytes, " +
                            std::to_string(size_ - offset_) +
                            " remaining");
    std::string text(reinterpret_cast<const char *>(data_ + offset_),
                     length);
    offset_ += length;
    return text;
}

void
WireReader::expectEnd() const
{
    if (offset_ != size_) {
        throw ProtocolError("frame has " +
                            std::to_string(size_ - offset_) +
                            " trailing bytes");
    }
}

void
WireWriter::u8(std::uint8_t value)
{
    bytes_.push_back(value);
}

void
WireWriter::u32(std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
WireWriter::u64(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
WireWriter::f64(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(std::string_view text)
{
    u32(static_cast<std::uint32_t>(text.size()));
    bytes_.insert(bytes_.end(), text.begin(), text.end());
}

std::vector<std::uint8_t>
frame(const std::vector<std::uint8_t> &payload)
{
    if (payload.size() > kMaxFramePayload)
        throw ProtocolError("frame payload exceeds kMaxFramePayload");
    std::vector<std::uint8_t> framed;
    framed.reserve(4 + payload.size());
    auto length = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        framed.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
    framed.insert(framed.end(), payload.begin(), payload.end());
    return framed;
}

void
encodeSpec(WireWriter &writer, const CampaignSpec &spec)
{
    writer.u8(static_cast<std::uint8_t>(spec.kind));
    writer.str(spec.kernel);
    writer.u8(spec.paperScale ? 1 : 0);
    writer.u64(spec.seed);
    writer.str(spec.faultModel);
    writer.u32(spec.shards);
    writer.u32(spec.procs);
    writer.u32(spec.threadsPerWorker);
    writer.u64(spec.chunk);
    writer.u32(spec.pilots);
    writer.u32(spec.loopIters);
    writer.u32(spec.bitSamples);
    writer.u8(spec.noSlicing ? 1 : 0);
    writer.u8(spec.noCheckpoints ? 1 : 0);
    writer.u64(spec.abortAfterSites);
    writer.str(spec.cacheDir);
    writer.u64(spec.sites.size());
    for (const faults::WeightedSite &site : spec.sites) {
        writer.u64(site.site.thread);
        writer.u64(site.site.dynIndex);
        writer.u32(site.site.bit);
        writer.f64(site.weight);
    }
}

CampaignSpec
decodeSpec(WireReader &reader)
{
    CampaignSpec spec;
    std::uint8_t kind = reader.u8();
    if (kind > static_cast<std::uint8_t>(CampaignSpec::Kind::Sites))
        throw ProtocolError("unknown campaign kind " +
                            std::to_string(kind));
    spec.kind = static_cast<CampaignSpec::Kind>(kind);
    spec.kernel = reader.str();
    spec.paperScale = reader.u8() != 0;
    spec.seed = reader.u64();
    spec.faultModel = reader.str();
    spec.shards = reader.u32();
    spec.procs = reader.u32();
    spec.threadsPerWorker = reader.u32();
    spec.chunk = reader.u64();
    spec.pilots = reader.u32();
    spec.loopIters = reader.u32();
    spec.bitSamples = reader.u32();
    spec.noSlicing = reader.u8() != 0;
    spec.noCheckpoints = reader.u8() != 0;
    spec.abortAfterSites = reader.u64();
    spec.cacheDir = reader.str();
    std::uint64_t count = reader.u64();
    if (count > kMaxSpecSites)
        throw ProtocolError("site list of " + std::to_string(count) +
                            " entries exceeds the frame limit");
    spec.sites.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        faults::WeightedSite site;
        site.site.thread = reader.u64();
        site.site.dynIndex = reader.u64();
        site.site.bit = reader.u32();
        site.weight = reader.f64();
        spec.sites.push_back(site);
    }
    if (spec.shards == 0)
        throw ProtocolError("campaign spec asks for zero shards");
    return spec;
}

void
FrameReader::feed(const std::uint8_t *data, std::size_t size)
{
    // Compact the consumed prefix before growing, so a long-lived
    // connection never accumulates dead bytes.
    if (scan_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(scan_));
        scan_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

bool
FrameReader::next(std::vector<std::uint8_t> &payload)
{
    if (buffer_.size() - scan_ < 4)
        return false;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
        length |= static_cast<std::uint32_t>(buffer_[scan_ + i])
                  << (8 * i);
    }
    if (length > kMaxFramePayload) {
        throw ProtocolError("announced frame payload of " +
                            std::to_string(length) +
                            " bytes exceeds the 16 MiB limit");
    }
    if (buffer_.size() - scan_ - 4 < length)
        return false;
    payload.assign(buffer_.begin() +
                       static_cast<std::ptrdiff_t>(scan_ + 4),
                   buffer_.begin() +
                       static_cast<std::ptrdiff_t>(scan_ + 4 + length));
    scan_ += 4 + static_cast<std::size_t>(length);
    return true;
}

} // namespace fsp::service
