/**
 * @file
 * The `fsp serve` daemon: a single-threaded poll loop that accepts
 * campaign submissions over the wire protocol, schedules one job at a
 * time across forked shard-worker processes, relays their progress
 * stream to the submitting client, recovers crashed workers by
 * respawning them onto their (resumable) shard journals, and exports
 * Prometheus metrics.
 *
 * Process model: the daemon itself never runs an injection -- each
 * shard is owned by a `fsp shard-worker` child (fork + exec of
 * /proc/self/exe) whose only shared state with the daemon is the spec
 * file, the shard journal, and a one-way progress pipe.  A worker
 * death therefore cannot corrupt the daemon, and recovery is exactly
 * the journal-resume path every campaign already has: respawn with an
 * incremented attempt counter, the journal replays completed chunks,
 * the worker injects the rest.  After restartLimit failed attempts
 * the job is failed and remaining workers are stopped.
 *
 * Endpoints: a unix-domain socket (always) and optionally TCP on
 * 127.0.0.1.  Plain HTTP GETs on either endpoint (detected by the
 * "GET " preamble) receive the metrics snapshot as a Prometheus text
 * response, so `curl --unix-socket` works without speaking the binary
 * protocol.
 */

#ifndef FSP_SERVICE_SERVER_HH
#define FSP_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "service/protocol.hh"
#include "util/metrics.hh"

namespace fsp::service {

/** Daemon configuration. */
struct ServeOptions
{
    /** Unix socket path (required). */
    std::string socketPath;

    /** Also listen on 127.0.0.1:tcpPort when tcpEnabled (0 picks an
     *  ephemeral port, readable via ServeDaemon::tcpPort()). */
    bool tcpEnabled = false;
    std::uint16_t tcpPort = 0;

    /** Respawn attempts per shard before the job fails. */
    std::uint32_t restartLimit = 3;

    /** Poll tick in milliseconds (timers, child reaping). */
    int pollMillis = 100;
};

/** The daemon.  start() binds, run() serves until Shutdown/stop. */
class ServeDaemon
{
  public:
    explicit ServeDaemon(ServeOptions options);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon &) = delete;
    ServeDaemon &operator=(const ServeDaemon &) = delete;

    /** Bind the endpoints (throws EndpointError on failure). */
    void start();

    /** Bound TCP port (after start(); 0 when TCP is disabled). */
    std::uint16_t tcpPort() const { return bound_tcp_port_; }

    /** Serve until a Shutdown request or requestStop(); returns 0. */
    int run();

    /** Async-signal-safe stop flag (for SIGINT/SIGTERM handlers). */
    void requestStop() { stop_ = true; }

    /** The daemon's metric registry (exported at /metrics). */
    metrics::Registry &registry() { return registry_; }

  private:
    struct Conn;
    struct ShardState;
    struct Job;

    void acceptPending(int listenFd);
    void readConn(Conn &conn);
    void handleFrame(Conn &conn, const std::vector<std::uint8_t> &payload);
    void handleSubmit(Conn &conn, WireReader &reader);
    void sendStatus(Conn &conn);
    void sendError(Conn &conn, const std::string &message);
    void sendFrame(Conn &conn, const std::vector<std::uint8_t> &payload);
    void sendHttpMetrics(Conn &conn);
    std::string metricsText() const;

    void pumpJobs();
    void startJob(Job &job);
    void spawnShard(Job &job, std::uint32_t shard);
    void readWorkerPipe(Job &job, std::uint32_t shard);
    void reapWorkers();
    void onShardExit(Job &job, std::uint32_t shard, int status);
    void finishJob(bool ok, const std::string &message);
    void failJob(const std::string &message);
    void relayProgress(Job &job, std::uint32_t shard,
                       std::uint64_t done, std::uint64_t total);
    Conn *subscriberOf(const Job &job);
    void closeConn(Conn &conn);

    ServeOptions options_;
    std::uint16_t bound_tcp_port_ = 0;
    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    std::atomic<bool> stop_{false};

    std::vector<std::unique_ptr<Conn>> conns_;
    std::deque<std::unique_ptr<Job>> queue_;
    std::unique_ptr<Job> active_;
    std::uint64_t next_job_id_ = 1;
    std::uint64_t jobs_done_ = 0;
    std::uint64_t jobs_failed_ = 0;

    metrics::Registry registry_;
    metrics::CounterId m_connections_;
    metrics::CounterId m_frames_;
    metrics::CounterId m_protocol_errors_;
    metrics::CounterId m_jobs_submitted_;
    metrics::CounterId m_jobs_completed_;
    metrics::CounterId m_jobs_failed_;
    metrics::CounterId m_workers_spawned_;
    metrics::CounterId m_worker_restarts_;
    metrics::GaugeId m_active_workers_;
    metrics::GaugeId m_jobs_queued_;
};

} // namespace fsp::service

#endif // FSP_SERVICE_SERVER_HH
