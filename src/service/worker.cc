/**
 * @file
 * Shard worker implementation.
 */

#include "service/worker.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>

#include <unistd.h>

#include "faults/shard_plan.hh"
#include "service/endpoint.hh"
#include "util/logging.hh"

namespace fsp::service {

CampaignContext
CampaignContext::fromSpec(const CampaignSpec &spec)
{
    CampaignContext ctx;
    ctx.spec = apps::findKernel(spec.kernel);
    if (ctx.spec == nullptr)
        throw std::runtime_error("unknown kernel '" + spec.kernel + "'");

    // Mirror the shared CLI flag semantics field for field
    // (analysis/cli_options.cc), then finalize exactly as the tools
    // do -- this is what makes a submitted campaign and a local
    // `fsp campaign` derive identical identities.
    analysis::CommonCliOptions &common = ctx.common;
    common.scale =
        spec.paperScale ? apps::Scale::Paper : apps::Scale::Small;
    common.seed = spec.seed;
    common.faultModel = spec.faultModel;
    common.pruning.thread.repsPerGroup = spec.pilots;
    common.pruning.loop.iterations = spec.loopIters;
    common.pruning.bit.samples = spec.bitSamples;
    if (spec.noSlicing) {
        common.campaign.allowSlicing = false;
        common.pruning.execution.slicedProfiling = false;
    }
    if (spec.noCheckpoints) {
        common.campaign.allowCheckpoints = false;
        common.pruning.execution.checkpoints = false;
    }
    common.campaign.workers = spec.threadsPerWorker;
    common.campaign.chunkSize = static_cast<std::size_t>(spec.chunk);
    if (!analysis::finalizeCommonOptions(common))
        throw std::runtime_error("invalid campaign spec for '" +
                                 spec.kernel + "'");

    ctx.modelHash = common.campaign.faultModel
                        ? common.campaign.faultModel->identityHash()
                        : faults::defaultFaultModel()->identityHash();

    // Same constructor seeding and slicing/checkpoint ordering as
    // tools/fsp.cc cmdCampaign: facade knobs before prune.
    analysis::AnalysisConfig facade;
    facade.slicing = common.campaign.allowSlicing;
    facade.checkpoints = common.campaign.allowCheckpoints;
    ctx.analysis = std::make_unique<analysis::KernelAnalysis>(
        *ctx.spec, common.scale, facade, common.seed + 41);

    if (spec.kind == CampaignSpec::Kind::Prune) {
        pruning::PruningResult pruned =
            ctx.analysis->prune(common.pruning);
        ctx.sites = std::move(pruned.sites);
        ctx.assumedMaskedWeight = pruned.assumedMaskedWeight;
        ctx.key = analysis::campaignJournalKey(*ctx.spec, common.scale,
                                               common);
    } else {
        ctx.sites = spec.sites;
        ctx.assumedMaskedWeight = 0.0;
        // Explicit lists get their own identity: the header hash
        // already covers every site and weight, the tag pins kernel,
        // scale and kind.
        ctx.key = faults::JournalKey{
            "sites:" + ctx.spec->fullName() + "@" +
                apps::scaleName(common.scale),
            common.seed};
    }
    return ctx;
}

void
writeSpecFile(const std::string &path, const CampaignSpec &spec)
{
    WireWriter writer;
    encodeSpec(writer, spec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(writer.payload().data()),
              static_cast<std::streamsize>(writer.payload().size()));
    if (!out)
        throw std::runtime_error("cannot write spec file '" + path +
                                 "'");
}

CampaignSpec
readSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read spec file '" + path + "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    WireReader reader(bytes);
    CampaignSpec spec = decodeSpec(reader);
    reader.expectEnd();
    return spec;
}

namespace {

/**
 * Streams WorkerProgress frames to the daemon from the engine's
 * ChunkFolded events -- the fold point is serialized, so writes never
 * interleave.  A dead pipe (daemon gone) silently disables streaming:
 * progress is advisory, the journal is the source of truth.
 */
class ProgressFrameObserver final : public faults::CampaignObserver
{
  public:
    ProgressFrameObserver(int fd, std::uint32_t shard) noexcept
        : fd_(fd), shard_(shard)
    {
    }

    void
    onChunkFolded(const ChunkFolded &event) override
    {
        if (fd_ < 0)
            return;
        WireWriter writer;
        writer.u8(static_cast<std::uint8_t>(MsgType::WorkerProgress));
        writer.u32(shard_);
        writer.u64(event.sitesDone);
        writer.u64(event.sitesTotal);
        try {
            std::vector<std::uint8_t> framed = frame(writer.payload());
            writeAll(fd_, framed.data(), framed.size());
        } catch (const std::exception &) {
            fd_ = -1;
        }
    }

  private:
    int fd_;
    std::uint32_t shard_;
};

} // namespace

int
runShardWorker(const ShardWorkerArgs &args)
{
    try {
        CampaignSpec spec = readSpecFile(args.specFile);
        if (args.shards != spec.shards || args.shard >= args.shards) {
            throw std::runtime_error(
                "shard " + std::to_string(args.shard) + "/" +
                std::to_string(args.shards) +
                " does not match the spec's shard count " +
                std::to_string(spec.shards));
        }
        CampaignContext ctx = CampaignContext::fromSpec(spec);

        faults::ShardPlan plan =
            faults::planShards(ctx.key, ctx.sites, args.shards);
        const faults::ShardPlanEntry &entry = plan.shards[args.shard];
        std::string journal_path = faults::shardJournalPath(
            args.journalBase, args.shard, args.shards);
        faults::prepareShardJournal(journal_path, entry, ctx.modelHash);

        ProgressFrameObserver progress(args.progressFd, args.shard);
        faults::CampaignOptions options = ctx.common.campaign;
        options.observer = &progress;
        if (!spec.cacheDir.empty()) {
            // Every shard worker attaches the same directory; the
            // cache's append-only store files make concurrent writers
            // from separate processes safe, and the shard only
            // indexes the threads its own sites touch.
            analysis::AnalysisConfig facade;
            facade.slicing = ctx.common.campaign.allowSlicing;
            facade.checkpoints = ctx.common.campaign.allowCheckpoints;
            facade.sectionCacheDir = spec.cacheDir;
            ctx.analysis->configure(facade);
            options.sectionCache = ctx.analysis->sectionCache();
            options.sectionIndex =
                &ctx.analysis->buildSectionIndex(entry.sites);
        }
        options.journalPath = journal_path;
        options.resume = true;
        options.journalKey = entry.key;
        if (args.attempt == 0)
            options.abortAfterSites = spec.abortAfterSites;

        ctx.analysis->campaignEngine(options).run(entry.sites);
        return 0;
    } catch (const faults::CampaignAborted &) {
        // The spec's crash-injection hook: exit as a killed worker
        // would, with every committed chunk durable in the journal.
        return 9;
    } catch (const std::exception &error) {
        std::cerr << "shard-worker: " << error.what() << "\n";
        return 1;
    }
}

} // namespace fsp::service
