/**
 * @file
 * Local stream endpoint implementation.
 */

#include "service/endpoint.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fsp::service {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw EndpointError(what + ": " + std::strerror(errno));
}

int
newSocket(int domain)
{
    int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throwErrno("cannot create socket");
    return fd;
}

} // namespace

int
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw EndpointError("unix socket path too long: '" + path + "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = newSocket(AF_UNIX);
    ::unlink(path.c_str()); // a stale socket file blocks bind
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("cannot bind unix socket '" + path + "'");
    }
    if (::listen(fd, 16) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("cannot listen on unix socket '" + path + "'");
    }
    return fd;
}

int
listenTcp(std::uint16_t port, std::uint16_t *boundPort)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);

    int fd = newSocket(AF_INET);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("cannot bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(fd, 16) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("cannot listen on 127.0.0.1:" + std::to_string(port));
    }
    if (boundPort != nullptr) {
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                          &len) < 0) {
            int saved = errno;
            ::close(fd);
            errno = saved;
            throwErrno("cannot read bound port");
        }
        *boundPort = ntohs(addr.sin_port);
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw EndpointError("unix socket path too long: '" + path + "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = newSocket(AF_UNIX);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("cannot connect to unix socket '" + path + "'");
    }
    return fd;
}

int
connectTcp(std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);

    int fd = newSocket(AF_INET);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("cannot connect to 127.0.0.1:" + std::to_string(port));
    }
    return fd;
}

int
acceptClient(int listenFd)
{
    int fd = ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED || errno == EINTR) {
            return -1;
        }
        throwErrno("accept failed");
    }
    return fd;
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throwErrno("cannot set O_NONBLOCK");
}

void
writeAll(int fd, const void *bytes, std::size_t size)
{
    const auto *cursor = static_cast<const std::uint8_t *>(bytes);
    while (size > 0) {
        ssize_t wrote = ::write(fd, cursor, size);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Non-blocking peer with a full buffer: give it a
                // bounded window to drain rather than spinning or
                // failing a healthy-but-slow local client.
                pollfd pfd{fd, POLLOUT, 0};
                if (::poll(&pfd, 1, 5000) <= 0)
                    throw EndpointError("socket write stalled");
                continue;
            }
            throwErrno("socket write failed");
        }
        cursor += wrote;
        size -= static_cast<std::size_t>(wrote);
    }
}

} // namespace fsp::service
