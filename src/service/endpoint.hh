/**
 * @file
 * Local stream endpoints for the campaign service: unix-domain
 * sockets (the default, filesystem-permission guarded) and TCP bound
 * to 127.0.0.1 (for clients that cannot speak AF_UNIX).  Thin
 * RAII-free fd helpers -- the daemon owns lifetimes explicitly in its
 * poll loop; errors throw EndpointError with errno text.
 */

#ifndef FSP_SERVICE_ENDPOINT_HH
#define FSP_SERVICE_ENDPOINT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace fsp::service {

class EndpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Bind + listen on a unix socket at @p path (unlinking any stale
 *  socket file first).  Returns the listening fd (CLOEXEC). */
int listenUnix(const std::string &path);

/**
 * Bind + listen on 127.0.0.1:@p port (0 = kernel-assigned).  Returns
 * the listening fd; @p boundPort (if non-null) receives the actual
 * port -- how tests run on an ephemeral port.
 */
int listenTcp(std::uint16_t port, std::uint16_t *boundPort = nullptr);

/** Connect to a unix socket; returns the fd. */
int connectUnix(const std::string &path);

/** Connect to 127.0.0.1:@p port; returns the fd. */
int connectTcp(std::uint16_t port);

/** Accept one connection (CLOEXEC); -1 when none is pending. */
int acceptClient(int listenFd);

/** Put @p fd in non-blocking mode. */
void setNonBlocking(int fd);

/** Write all of @p size bytes (retrying short writes); throws on
 *  error.  Used for frames on connected local sockets, where the
 *  kernel buffer absorbs them without meaningful blocking. */
void writeAll(int fd, const void *bytes, std::size_t size);

} // namespace fsp::service

#endif // FSP_SERVICE_ENDPOINT_HH
