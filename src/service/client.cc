/**
 * @file
 * Service client implementation.
 */

#include "service/client.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "service/endpoint.hh"

namespace fsp::service {

ServiceClient
ServiceClient::connectUnixSocket(const std::string &path)
{
    return ServiceClient(connectUnix(path));
}

ServiceClient
ServiceClient::connectLoopback(std::uint16_t port)
{
    return ServiceClient(connectTcp(port));
}

ServiceClient::ServiceClient(ServiceClient &&other) noexcept
    : fd_(other.fd_), frames_(std::move(other.frames_))
{
    other.fd_ = -1;
}

ServiceClient &
ServiceClient::operator=(ServiceClient &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        frames_ = std::move(other.frames_);
        other.fd_ = -1;
    }
    return *this;
}

ServiceClient::~ServiceClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ServiceClient::sendPayload(const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> framed = frame(payload);
    writeAll(fd_, framed.data(), framed.size());
}

void
ServiceClient::sendRaw(const void *bytes, std::size_t size)
{
    writeAll(fd_, bytes, size);
}

std::vector<std::uint8_t>
ServiceClient::readFrame()
{
    std::vector<std::uint8_t> payload;
    std::uint8_t buffer[4096];
    for (;;) {
        if (frames_.next(payload))
            return payload;
        ssize_t got = ::read(fd_, buffer, sizeof(buffer));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            throw ProtocolError(std::string("read failed: ") +
                                std::strerror(errno));
        }
        if (got == 0)
            throw ProtocolError("connection closed by the daemon");
        frames_.feed(buffer, static_cast<std::size_t>(got));
    }
}

void
ServiceClient::ping()
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Ping));
    sendPayload(writer.payload());
    std::vector<std::uint8_t> payload = readFrame();
    WireReader reader(payload);
    if (static_cast<MsgType>(reader.u8()) != MsgType::Pong)
        throw ProtocolError("unexpected reply to ping");
}

std::uint64_t
ServiceClient::submit(const CampaignSpec &spec,
                      const std::string &journalBase)
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Submit));
    writer.str(journalBase);
    encodeSpec(writer, spec);
    sendPayload(writer.payload());

    std::vector<std::uint8_t> payload = readFrame();
    WireReader reader(payload);
    auto type = static_cast<MsgType>(reader.u8());
    if (type == MsgType::ErrorReply)
        throw ProtocolError("submit rejected: " + reader.str());
    if (type != MsgType::Submitted)
        throw ProtocolError("unexpected reply to submit");
    return reader.u64();
}

JobOutcome
ServiceClient::waitJob(
    std::uint64_t jobId,
    const std::function<void(const JobProgress &)> &onProgress)
{
    for (;;) {
        std::vector<std::uint8_t> payload = readFrame();
        WireReader reader(payload);
        auto type = static_cast<MsgType>(reader.u8());
        switch (type) {
          case MsgType::Progress: {
            JobProgress progress;
            progress.jobId = reader.u64();
            progress.shard = reader.u32();
            progress.shardSitesDone = reader.u64();
            progress.shardSitesTotal = reader.u64();
            progress.jobSitesDone = reader.u64();
            progress.jobSitesTotal = reader.u64();
            if (onProgress && progress.jobId == jobId)
                onProgress(progress);
            break;
          }
          case MsgType::ShardDone:
            break; // informational; JobDone is the terminal event
          case MsgType::JobDone: {
            JobOutcome outcome;
            outcome.jobId = reader.u64();
            outcome.ok = reader.u8() != 0;
            outcome.message = reader.str();
            if (outcome.jobId == jobId)
                return outcome;
            break;
          }
          case MsgType::ErrorReply:
            throw ProtocolError("daemon error: " + reader.str());
          default:
            break; // ignore unrelated replies on this connection
        }
    }
}

ServiceStatus
ServiceClient::status()
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Status));
    sendPayload(writer.payload());

    for (;;) {
        std::vector<std::uint8_t> payload = readFrame();
        WireReader reader(payload);
        auto type = static_cast<MsgType>(reader.u8());
        if (type != MsgType::StatusReply)
            continue; // skip interleaved job events
        ServiceStatus status;
        status.jobsQueued = reader.u64();
        status.jobsDone = reader.u64();
        status.jobsFailed = reader.u64();
        status.activeJob = reader.u64();
        status.shardsDone = reader.u32();
        status.shardCount = reader.u32();
        status.sitesDone = reader.u64();
        status.sitesTotal = reader.u64();
        return status;
    }
}

std::string
ServiceClient::metricsText()
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Metrics));
    sendPayload(writer.payload());
    for (;;) {
        std::vector<std::uint8_t> payload = readFrame();
        WireReader reader(payload);
        if (static_cast<MsgType>(reader.u8()) != MsgType::MetricsText)
            continue; // skip interleaved job events
        return reader.str();
    }
}

void
ServiceClient::shutdownServer()
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Shutdown));
    sendPayload(writer.payload());
    for (;;) {
        std::vector<std::uint8_t> payload = readFrame();
        WireReader reader(payload);
        if (static_cast<MsgType>(reader.u8()) == MsgType::ShuttingDown)
            return;
    }
}

} // namespace fsp::service
