/**
 * @file
 * Worker-side campaign context: the single code path that turns a
 * CampaignSpec into the site list, journal key, and hashes a campaign
 * runs under.
 *
 * Identity is the whole game for sharded campaigns: a shard worker, a
 * crash-respawned worker, `fsp merge`, and a plain single-process
 * `fsp campaign` must all derive the exact same weighted site list
 * and journal identity from the same inputs, or journals stop
 * validating and bit-identity is meaningless.  CampaignContext
 * therefore mirrors the `fsp campaign` code path step for step
 * (shared CLI option semantics, same KernelAnalysis seeding, same
 * slicing/checkpoint ordering relative to prune) instead of
 * reimplementing it.
 *
 * runShardWorker() is the body of `fsp shard-worker`, the process the
 * daemon forks per shard: build the context, plan shards, prepare (or
 * resume) this shard's journal, run the engine over the shard's
 * sub-list, and stream WorkerProgress frames to the inherited pipe.
 */

#ifndef FSP_SERVICE_WORKER_HH
#define FSP_SERVICE_WORKER_HH

#include <memory>
#include <string>

#include "analysis/analyzer.hh"
#include "analysis/cli_options.hh"
#include "service/protocol.hh"

namespace fsp::service {

/** Everything a spec determines about its campaign. */
struct CampaignContext
{
    const apps::KernelSpec *spec = nullptr;
    analysis::CommonCliOptions common;
    std::unique_ptr<analysis::KernelAnalysis> analysis;

    /** The campaign's full weighted site list, canonical order. */
    std::vector<faults::WeightedSite> sites;

    /** Weight folded into Masked after the campaign (pruned specs). */
    double assumedMaskedWeight = 0.0;

    /** Campaign identity (journal key of the UNSHARDED campaign). */
    faults::JournalKey key;

    /** Fault model identity hash the journals validate against. */
    std::uint64_t modelHash = 0;

    /**
     * Build the context from @p spec: resolve the kernel, apply the
     * spec's knobs exactly as the shared CLI would, run the pruning
     * pipeline (Kind::Prune) or adopt the explicit list
     * (Kind::Sites), and derive the campaign identity.  Throws
     * std::runtime_error on an unknown kernel or a malformed
     * fault-model spec.
     */
    static CampaignContext fromSpec(const CampaignSpec &spec);
};

/** Spool an encoded spec to @p path / load it back (daemon -> worker
 *  handoff; same encoding as the Submit frame body). */
void writeSpecFile(const std::string &path, const CampaignSpec &spec);
CampaignSpec readSpecFile(const std::string &path);

/** Arguments of one `fsp shard-worker` invocation. */
struct ShardWorkerArgs
{
    std::string specFile;
    std::string journalBase;
    std::uint32_t shard = 0;
    std::uint32_t shards = 1;
    std::uint32_t attempt = 0; ///< respawn count; gates abortAfterSites
    int progressFd = -1;       ///< WorkerProgress frames; -1 = none
};

/**
 * Run one shard to completion: returns 0 on success, 9 when the
 * spec's abortAfterSites testing hook fired (first attempt only), 1
 * on any other error (diagnostic on stderr).  The shard journal holds
 * every committed chunk either way.
 */
int runShardWorker(const ShardWorkerArgs &args);

} // namespace fsp::service

#endif // FSP_SERVICE_WORKER_HH
