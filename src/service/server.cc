/**
 * @file
 * Daemon implementation.
 */

#include "service/server.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sstream>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "apps/app.hh"
#include "service/endpoint.hh"
#include "service/worker.hh"
#include "util/logging.hh"

namespace fsp::service {

/** One client connection (binary protocol or plain-HTTP metrics). */
struct ServeDaemon::Conn
{
    int fd = -1;
    FrameReader frames;
    bool http = false;       ///< "GET " preamble seen
    std::string httpBuf;     ///< request bytes until the blank line
    bool sniffed = false;    ///< first bytes inspected yet?
    std::string sniffBuf;    ///< pre-sniff bytes (< 4)
    std::uint64_t subscribedJob = 0;
    bool dead = false;
};

/** One shard of the active job. */
struct ServeDaemon::ShardState
{
    pid_t pid = -1;
    int pipeFd = -1;
    FrameReader frames;
    std::uint32_t attempts = 0; ///< spawns so far
    bool done = false;
    std::uint64_t sitesDone = 0;
    std::uint64_t sitesTotal = 0; ///< 0 until the first progress frame
};

/** A queued or active campaign job. */
struct ServeDaemon::Job
{
    std::uint64_t id = 0;
    CampaignSpec spec;
    std::string journalBase;
    std::string specFile;
    std::vector<ShardState> shards;
    std::uint32_t shardsDone = 0;
    std::uint32_t nextShard = 0; ///< next shard index to spawn
    std::uint32_t running = 0;   ///< live worker processes
};

ServeDaemon::ServeDaemon(ServeOptions options)
    : options_(std::move(options))
{
    m_connections_ = registry_.counter(
        "fsp_serve_connections_total", "client connections accepted");
    m_frames_ = registry_.counter("fsp_serve_frames_total",
                                  "protocol frames processed");
    m_protocol_errors_ =
        registry_.counter("fsp_serve_protocol_errors_total",
                          "malformed frames / connections dropped");
    m_jobs_submitted_ = registry_.counter("fsp_serve_jobs_submitted_total",
                                          "campaign jobs accepted");
    m_jobs_completed_ = registry_.counter("fsp_serve_jobs_completed_total",
                                          "campaign jobs completed");
    m_jobs_failed_ = registry_.counter("fsp_serve_jobs_failed_total",
                                       "campaign jobs failed");
    m_workers_spawned_ = registry_.counter(
        "fsp_serve_workers_spawned_total", "shard worker processes forked");
    m_worker_restarts_ = registry_.counter(
        "fsp_serve_worker_restarts_total",
        "crashed shard workers respawned onto their journals");
    m_active_workers_ = registry_.gauge("fsp_serve_active_workers",
                                        "live shard worker processes");
    m_jobs_queued_ =
        registry_.gauge("fsp_serve_jobs_queued", "jobs waiting to run");
}

ServeDaemon::~ServeDaemon()
{
    if (active_) {
        for (ShardState &shard : active_->shards) {
            if (shard.pid > 0)
                ::kill(shard.pid, SIGTERM);
            if (shard.pipeFd >= 0)
                ::close(shard.pipeFd);
        }
        for (ShardState &shard : active_->shards) {
            if (shard.pid > 0)
                ::waitpid(shard.pid, nullptr, 0);
        }
    }
    for (auto &conn : conns_) {
        if (conn->fd >= 0)
            ::close(conn->fd);
    }
    if (unix_fd_ >= 0)
        ::close(unix_fd_);
    if (tcp_fd_ >= 0)
        ::close(tcp_fd_);
    if (!options_.socketPath.empty())
        ::unlink(options_.socketPath.c_str());
}

void
ServeDaemon::start()
{
    // A client that vanished mid-reply must not kill the daemon.
    ::signal(SIGPIPE, SIG_IGN);
    unix_fd_ = listenUnix(options_.socketPath);
    setNonBlocking(unix_fd_);
    if (options_.tcpEnabled) {
        tcp_fd_ = listenTcp(options_.tcpPort, &bound_tcp_port_);
        setNonBlocking(tcp_fd_);
    }
    inform("fsp-serve: ", "listening on " + options_.socketPath +
                              (options_.tcpEnabled
                                   ? " and 127.0.0.1:" +
                                         std::to_string(bound_tcp_port_)
                                   : ""));
}

int
ServeDaemon::run()
{
    while (!stop_) {
        pumpJobs();

        std::vector<pollfd> fds;
        fds.push_back({unix_fd_, POLLIN, 0});
        if (tcp_fd_ >= 0)
            fds.push_back({tcp_fd_, POLLIN, 0});
        std::size_t conn_base = fds.size();
        // Connections accepted later this tick have no pollfd entry;
        // the dispatch loop below must not index past polled_conns.
        const std::size_t polled_conns = conns_.size();
        for (auto &conn : conns_)
            fds.push_back({conn->fd, POLLIN, 0});
        std::size_t pipe_base = fds.size();
        if (active_) {
            for (ShardState &shard : active_->shards) {
                if (shard.pipeFd >= 0)
                    fds.push_back({shard.pipeFd, POLLIN, 0});
            }
        }

        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()),
                           options_.pollMillis);
        if (ready < 0 && errno != EINTR)
            break;

        if (ready > 0) {
            std::size_t index = 0;
            if (fds[index].revents & POLLIN)
                acceptPending(unix_fd_);
            ++index;
            if (tcp_fd_ >= 0) {
                if (fds[index].revents & POLLIN)
                    acceptPending(tcp_fd_);
                ++index;
            }
            for (std::size_t c = 0; c < polled_conns; ++c) {
                if (fds[conn_base + c].revents & (POLLIN | POLLHUP))
                    readConn(*conns_[c]);
            }
            if (active_) {
                std::size_t slot = pipe_base;
                for (std::uint32_t s = 0;
                     s < active_->shards.size() && slot < fds.size();
                     ++s) {
                    if (active_->shards[s].pipeFd < 0)
                        continue;
                    if (fds[slot].revents & (POLLIN | POLLHUP))
                        readWorkerPipe(*active_, s);
                    ++slot;
                }
            }
        }

        reapWorkers();

        conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                    [](const std::unique_ptr<Conn> &c) {
                                        return c->dead;
                                    }),
                     conns_.end());
    }
    return 0;
}

void
ServeDaemon::acceptPending(int listenFd)
{
    for (;;) {
        int fd = acceptClient(listenFd);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conns_.push_back(std::move(conn));
        registry_.add(m_connections_);
    }
}

void
ServeDaemon::readConn(Conn &conn)
{
    std::uint8_t buffer[4096];
    for (;;) {
        ssize_t got = ::read(conn.fd, buffer, sizeof(buffer));
        if (got < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            if (errno == EINTR)
                continue;
            closeConn(conn);
            return;
        }
        if (got == 0) {
            closeConn(conn);
            return;
        }

        const std::uint8_t *data = buffer;
        std::size_t size = static_cast<std::size_t>(got);

        if (!conn.sniffed) {
            // Peek at the first 4 bytes: ASCII "GET " selects the
            // plain-HTTP metrics path, anything else is a frame
            // stream.  (A binary frame can't collide: "GET " decodes
            // as a > 500 MB announced length, over the frame limit.)
            conn.sniffBuf.append(reinterpret_cast<const char *>(data),
                                 size);
            if (conn.sniffBuf.size() < 4)
                continue;
            conn.sniffed = true;
            conn.http = conn.sniffBuf.compare(0, 4, "GET ") == 0;
            if (conn.http) {
                conn.httpBuf = std::move(conn.sniffBuf);
            } else {
                try {
                    conn.frames.feed(
                        reinterpret_cast<const std::uint8_t *>(
                            conn.sniffBuf.data()),
                        conn.sniffBuf.size());
                } catch (const ProtocolError &) {
                    registry_.add(m_protocol_errors_);
                    closeConn(conn);
                    return;
                }
            }
            conn.sniffBuf.clear();
            data = nullptr;
            size = 0;
        } else if (conn.http) {
            conn.httpBuf.append(reinterpret_cast<const char *>(data),
                                size);
            data = nullptr;
            size = 0;
        }

        if (conn.http) {
            if (conn.httpBuf.find("\r\n\r\n") != std::string::npos ||
                conn.httpBuf.find("\n\n") != std::string::npos) {
                sendHttpMetrics(conn);
                closeConn(conn);
                return;
            }
            if (conn.httpBuf.size() > 64 * 1024) {
                closeConn(conn); // not a sane GET; drop it
                return;
            }
            continue;
        }

        try {
            if (size > 0)
                conn.frames.feed(data, size);
            std::vector<std::uint8_t> payload;
            while (conn.frames.next(payload)) {
                registry_.add(m_frames_);
                handleFrame(conn, payload);
                if (conn.dead)
                    return;
            }
        } catch (const ProtocolError &error) {
            registry_.add(m_protocol_errors_);
            try {
                sendError(conn, error.what());
            } catch (const std::exception &) {
            }
            closeConn(conn);
            return;
        }
    }
}

void
ServeDaemon::handleFrame(Conn &conn,
                         const std::vector<std::uint8_t> &payload)
{
    WireReader reader(payload);
    auto type = static_cast<MsgType>(reader.u8());
    switch (type) {
      case MsgType::Ping: {
        WireWriter writer;
        writer.u8(static_cast<std::uint8_t>(MsgType::Pong));
        sendFrame(conn, writer.payload());
        return;
      }
      case MsgType::Submit:
        handleSubmit(conn, reader);
        return;
      case MsgType::Status:
        sendStatus(conn);
        return;
      case MsgType::Metrics: {
        WireWriter writer;
        writer.u8(static_cast<std::uint8_t>(MsgType::MetricsText));
        writer.str(metricsText());
        sendFrame(conn, writer.payload());
        return;
      }
      case MsgType::Shutdown: {
        sendFrame(conn, {static_cast<std::uint8_t>(
                      MsgType::ShuttingDown)});
        stop_ = true;
        return;
      }
      default:
        throw ProtocolError("unknown request type " +
                            std::to_string(static_cast<unsigned>(
                                static_cast<std::uint8_t>(type))));
    }
}

void
ServeDaemon::handleSubmit(Conn &conn, WireReader &reader)
{
    std::string journal_base = reader.str();
    CampaignSpec spec = decodeSpec(reader);
    reader.expectEnd();

    if (journal_base.empty()) {
        sendError(conn, "submit needs a journal base path");
        return;
    }
    if (apps::findKernel(spec.kernel) == nullptr) {
        sendError(conn, "unknown kernel '" + spec.kernel + "'");
        return;
    }
    if (spec.kind == CampaignSpec::Kind::Sites && spec.sites.empty()) {
        sendError(conn, "explicit-site campaign has no sites");
        return;
    }

    auto job = std::make_unique<Job>();
    job->id = next_job_id_++;
    job->spec = std::move(spec);
    job->journalBase = std::move(journal_base);
    job->specFile = job->journalBase + ".spec";
    job->shards.resize(job->spec.shards);
    conn.subscribedJob = job->id;
    registry_.add(m_jobs_submitted_);

    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Submitted));
    writer.u64(job->id);
    sendFrame(conn, writer.payload());

    queue_.push_back(std::move(job));
    registry_.set(m_jobs_queued_, static_cast<double>(queue_.size()));
}

void
ServeDaemon::sendStatus(Conn &conn)
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::StatusReply));
    writer.u64(queue_.size());
    writer.u64(jobs_done_);
    writer.u64(jobs_failed_);
    writer.u64(active_ ? active_->id : 0);
    if (active_) {
        std::uint64_t done = 0, total = 0;
        for (const ShardState &shard : active_->shards) {
            done += shard.sitesDone;
            total += shard.sitesTotal;
        }
        writer.u32(active_->shardsDone);
        writer.u32(static_cast<std::uint32_t>(active_->shards.size()));
        writer.u64(done);
        writer.u64(total);
    } else {
        writer.u32(0);
        writer.u32(0);
        writer.u64(0);
        writer.u64(0);
    }
    sendFrame(conn, writer.payload());
}

void
ServeDaemon::sendError(Conn &conn, const std::string &message)
{
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::ErrorReply));
    writer.str(message);
    sendFrame(conn, writer.payload());
}

void
ServeDaemon::sendFrame(Conn &conn,
                       const std::vector<std::uint8_t> &payload)
{
    if (conn.fd < 0 || conn.dead)
        return;
    try {
        std::vector<std::uint8_t> framed = frame(payload);
        writeAll(conn.fd, framed.data(), framed.size());
    } catch (const std::exception &) {
        closeConn(conn);
    }
}

std::string
ServeDaemon::metricsText() const
{
    std::ostringstream out;
    registry_.writePrometheus(out);
    return out.str();
}

void
ServeDaemon::sendHttpMetrics(Conn &conn)
{
    std::string body = metricsText();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n\r\n" + body;
    try {
        writeAll(conn.fd, response.data(), response.size());
    } catch (const std::exception &) {
    }
}

void
ServeDaemon::pumpJobs()
{
    if (!active_ && !queue_.empty()) {
        active_ = std::move(queue_.front());
        queue_.pop_front();
        registry_.set(m_jobs_queued_,
                      static_cast<double>(queue_.size()));
        startJob(*active_);
        if (!active_)
            return; // startJob failed the job synchronously
    }
    if (!active_)
        return;

    // Keep up to `procs` workers busy while shards remain unspawned.
    std::uint32_t procs = active_->spec.procs > 0
                              ? active_->spec.procs
                              : active_->spec.shards;
    while (active_->running < procs &&
           active_->nextShard < active_->shards.size()) {
        spawnShard(*active_, active_->nextShard);
        active_->nextShard++;
    }
}

void
ServeDaemon::startJob(Job &job)
{
    try {
        writeSpecFile(job.specFile, job.spec);
    } catch (const std::exception &error) {
        failJob(std::string("cannot stage job: ") + error.what());
        return;
    }
    inform("fsp-serve: ",
           "job " + std::to_string(job.id) + ": " + job.spec.kernel +
               " over " + std::to_string(job.spec.shards) + " shard(s)");
}

void
ServeDaemon::spawnShard(Job &job, std::uint32_t shard)
{
    ShardState &state = job.shards[shard];

    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_CLOEXEC) < 0) {
        failJob("cannot create worker pipe");
        return;
    }

    // An in-process daemon (the test suites) is not the fsp binary,
    // so the worker image can be overridden; the default re-execs
    // ourselves.  Resolved before fork: getenv after fork is unsafe.
    const char *binary = std::getenv("FSP_WORKER_BINARY");
    if (binary == nullptr || *binary == '\0')
        binary = "/proc/self/exe";

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
        failJob("cannot fork shard worker");
        return;
    }
    if (pid == 0) {
        // Child: hand the pipe's write end over as fd 3 (dup2 clears
        // CLOEXEC) and become the shard worker.
        ::dup2(pipe_fds[1], 3);
        std::string shard_s = std::to_string(shard);
        std::string shards_s = std::to_string(job.spec.shards);
        std::string attempt_s = std::to_string(state.attempts);
        const char *argv[] = {"fsp",
                              "shard-worker",
                              "--spec-file",
                              job.specFile.c_str(),
                              "--journal-base",
                              job.journalBase.c_str(),
                              "--shard",
                              shard_s.c_str(),
                              "--shards",
                              shards_s.c_str(),
                              "--attempt",
                              attempt_s.c_str(),
                              "--progress-fd",
                              "3",
                              nullptr};
        ::execv(binary, const_cast<char **>(argv));
        _exit(127);
    }

    ::close(pipe_fds[1]);
    setNonBlocking(pipe_fds[0]);
    state.pid = pid;
    state.pipeFd = pipe_fds[0];
    state.frames = FrameReader{};
    if (state.attempts > 0)
        registry_.add(m_worker_restarts_);
    state.attempts++;
    job.running++;
    registry_.add(m_workers_spawned_);
    registry_.set(m_active_workers_, static_cast<double>(job.running));
}

void
ServeDaemon::readWorkerPipe(Job &job, std::uint32_t shard)
{
    ShardState &state = job.shards[shard];
    std::uint8_t buffer[4096];
    for (;;) {
        ssize_t got = ::read(state.pipeFd, buffer, sizeof(buffer));
        if (got < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            got = 0;
        }
        if (got == 0) {
            ::close(state.pipeFd);
            state.pipeFd = -1;
            return;
        }
        try {
            state.frames.feed(buffer, static_cast<std::size_t>(got));
            std::vector<std::uint8_t> payload;
            while (state.frames.next(payload)) {
                WireReader reader(payload);
                if (static_cast<MsgType>(reader.u8()) !=
                    MsgType::WorkerProgress) {
                    continue;
                }
                std::uint32_t from_shard = reader.u32();
                std::uint64_t done = reader.u64();
                std::uint64_t total = reader.u64();
                if (from_shard != shard)
                    continue;
                state.sitesDone = done;
                state.sitesTotal = std::max(state.sitesTotal, total);
                relayProgress(job, shard, done, total);
            }
        } catch (const ProtocolError &) {
            // A garbled pipe only degrades progress reporting; the
            // worker's exit status and journal remain authoritative.
            ::close(state.pipeFd);
            state.pipeFd = -1;
            return;
        }
    }
}

void
ServeDaemon::reapWorkers()
{
    if (!active_)
        return;
    for (;;) {
        int status = 0;
        pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            break;
        if (!active_)
            continue; // drain children of an already-failed job
        for (std::uint32_t s = 0; s < active_->shards.size(); ++s) {
            if (active_->shards[s].pid == pid) {
                onShardExit(*active_, s, status);
                break;
            }
        }
        if (!active_)
            break;
    }
}

void
ServeDaemon::onShardExit(Job &job, std::uint32_t shard, int status)
{
    ShardState &state = job.shards[shard];
    state.pid = -1;
    job.running--;
    registry_.set(m_active_workers_, static_cast<double>(job.running));
    if (state.pipeFd >= 0)
        readWorkerPipe(job, shard); // drain buffered progress
    if (state.pipeFd >= 0) {
        ::close(state.pipeFd);
        state.pipeFd = -1;
    }

    bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (ok) {
        state.done = true;
        job.shardsDone++;
        if (Conn *sub = subscriberOf(job)) {
            WireWriter writer;
            writer.u8(static_cast<std::uint8_t>(MsgType::ShardDone));
            writer.u64(job.id);
            writer.u32(shard);
            writer.u8(1);
            writer.str("");
            sendFrame(*sub, writer.payload());
        }
        if (job.shardsDone == job.shards.size())
            finishJob(true, "all shards complete");
        return;
    }

    // Crash path: the shard journal holds every committed chunk, so a
    // respawned worker resumes instead of restarting from zero.
    std::string why =
        WIFSIGNALED(status)
            ? "killed by signal " + std::to_string(WTERMSIG(status))
            : "exited with status " +
                  std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                   : -1);
    if (state.attempts > options_.restartLimit) {
        failJob("shard " + std::to_string(shard) + " " + why + " after " +
                std::to_string(state.attempts) + " attempts");
        return;
    }
    inform("fsp-serve: ",
           "job " + std::to_string(job.id) + " shard " +
               std::to_string(shard) + " " + why +
               "; respawning onto its journal (attempt " +
               std::to_string(state.attempts + 1) + ")");
    spawnShard(job, shard);
}

void
ServeDaemon::finishJob(bool ok, const std::string &message)
{
    if (!active_)
        return;
    Job &job = *active_;
    if (Conn *sub = subscriberOf(job)) {
        WireWriter writer;
        writer.u8(static_cast<std::uint8_t>(MsgType::JobDone));
        writer.u64(job.id);
        writer.u8(ok ? 1 : 0);
        writer.str(message);
        sendFrame(*sub, writer.payload());
    }
    registry_.add(ok ? m_jobs_completed_ : m_jobs_failed_);
    (ok ? jobs_done_ : jobs_failed_)++;
    registry_.set(m_active_workers_, 0.0);
    inform("fsp-serve: ",
           "job " + std::to_string(job.id) +
               (ok ? " done: " : " FAILED: ") + message);
    active_.reset();
}

void
ServeDaemon::failJob(const std::string &message)
{
    if (!active_)
        return;
    for (ShardState &shard : active_->shards) {
        if (shard.pid > 0)
            ::kill(shard.pid, SIGTERM);
        if (shard.pipeFd >= 0) {
            ::close(shard.pipeFd);
            shard.pipeFd = -1;
        }
    }
    for (ShardState &shard : active_->shards) {
        if (shard.pid > 0) {
            ::waitpid(shard.pid, nullptr, 0);
            shard.pid = -1;
        }
    }
    finishJob(false, message);
}

void
ServeDaemon::relayProgress(Job &job, std::uint32_t shard,
                           std::uint64_t done, std::uint64_t total)
{
    Conn *sub = subscriberOf(job);
    if (sub == nullptr)
        return;
    std::uint64_t job_done = 0, job_total = 0;
    for (const ShardState &state : job.shards) {
        job_done += state.sitesDone;
        job_total += state.sitesTotal;
    }
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Progress));
    writer.u64(job.id);
    writer.u32(shard);
    writer.u64(done);
    writer.u64(total);
    writer.u64(job_done);
    writer.u64(job_total);
    sendFrame(*sub, writer.payload());
}

ServeDaemon::Conn *
ServeDaemon::subscriberOf(const Job &job)
{
    for (auto &conn : conns_) {
        if (!conn->dead && conn->subscribedJob == job.id)
            return conn.get();
    }
    return nullptr;
}

void
ServeDaemon::closeConn(Conn &conn)
{
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
    conn.dead = true;
}

} // namespace fsp::service
