/**
 * @file
 * The campaign service wire protocol: length-prefixed binary frames
 * over a local stream socket (unix-domain or TCP loopback).
 *
 * Framing: every frame is a 4-byte little-endian payload length
 * followed by the payload; payload byte 0 is the message type.  The
 * length covers the payload only and is bounded by kMaxFramePayload --
 * a peer announcing more is a protocol error and the connection is
 * dropped, never buffered.  All integers are little-endian; strings
 * are a u32 length followed by raw bytes; doubles are their IEEE-754
 * bit pattern as u64.
 *
 * Message families (see MsgType):
 *
 *   requests   Ping, Submit (a CampaignSpec), Status, Metrics,
 *              Shutdown
 *   responses  Pong, Submitted, StatusReply, MetricsText, ErrorReply,
 *              ShuttingDown
 *   events     Progress, ShardDone, JobDone -- streamed to the
 *              submitting connection while its job runs (the service
 *              relays the campaign engine's CampaignObserver stream)
 *   internal   WorkerProgress -- worker process -> daemon, over the
 *              inherited progress pipe, same framing
 *
 * Decoding is strictly bounds-checked (WireReader throws
 * ProtocolError; nothing reads past the payload), so truncated,
 * oversized, or garbage frames are rejected without undefined
 * behaviour -- the property the protocol fuzz test locks down.
 */

#ifndef FSP_SERVICE_PROTOCOL_HH
#define FSP_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/fault_site.hh"
#include "pruning/pipeline.hh"

namespace fsp::service {

/** Any framing or decode violation (message says which). */
class ProtocolError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Hard ceiling on one frame's payload (16 MiB). */
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/** Frame type tags (payload byte 0). */
enum class MsgType : std::uint8_t
{
    // Requests.
    Ping = 0x01,
    Submit = 0x02,
    Status = 0x03,
    Metrics = 0x04,
    Shutdown = 0x05,

    // Responses.
    Pong = 0x81,
    Submitted = 0x82,
    StatusReply = 0x83,
    MetricsText = 0x84,
    ErrorReply = 0x85,
    ShuttingDown = 0x86,

    // Streamed job events.
    Progress = 0xC1,
    ShardDone = 0xC2,
    JobDone = 0xC3,

    // Worker -> daemon (progress pipe only).
    WorkerProgress = 0xE1,
};

/**
 * One campaign request.  `Prune` runs the paper's pruning pipeline in
 * each worker and injects the pruned weighted list; `Sites` injects
 * the explicit list carried by the spec.  The scalar knobs mirror the
 * shared CLI options so a submitted campaign and a local
 * `fsp campaign` run derive the identical site list, journal key and
 * hashes from the same values.
 */
struct CampaignSpec
{
    enum class Kind : std::uint8_t
    {
        Prune = 0,
        Sites = 1,
    };

    Kind kind = Kind::Prune;
    std::string kernel;      ///< registered kernel, e.g. "GEMM/K1"
    bool paperScale = false; ///< Scale::Paper instead of Small
    std::uint64_t seed = 1;
    std::string faultModel; ///< --fault-model spec; "" = default

    std::uint32_t shards = 1; ///< shard count (>= 1)
    std::uint32_t procs = 0;  ///< concurrent workers; 0 = one per shard
    std::uint32_t threadsPerWorker = 0; ///< engine threads; 0 = default
    std::uint64_t chunk = 0;            ///< engine chunk size; 0 = derived

    /** Pruning knobs (defaults track pruning::PruningConfig). */
    std::uint32_t pilots = pruning::PruningConfig{}.thread.repsPerGroup;
    std::uint32_t loopIters = pruning::PruningConfig{}.loop.iterations;
    std::uint32_t bitSamples = pruning::PruningConfig{}.bit.samples;
    bool noSlicing = false;
    bool noCheckpoints = false;

    /**
     * Testing hook forwarded to the FIRST attempt of every shard
     * worker: abort (exit nonzero) after this many classified sites,
     * exercising the daemon's crash-recovery respawn; 0 disables.
     */
    std::uint64_t abortAfterSites = 0;

    /**
     * Shared section-cache directory (--cache); every shard worker
     * attaches the same directory, so one worker's stored sections
     * satisfy another's lookups on the next submission.  "" disables.
     */
    std::string cacheDir;

    /** Explicit site list (Kind::Sites). */
    std::vector<faults::WeightedSite> sites;

    bool operator==(const CampaignSpec &other) const = default;
};

/** Bounds-checked sequential decoder over one payload. */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit WireReader(const std::vector<std::uint8_t> &payload)
        : WireReader(payload.data(), payload.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    std::size_t remaining() const { return size_ - offset_; }

    /** Throws unless the whole payload was consumed. */
    void expectEnd() const;

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t offset_ = 0;
};

/** Append-only encoder building one payload. */
class WireWriter
{
  public:
    void u8(std::uint8_t value);
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    void f64(double value);
    void str(std::string_view text);

    const std::vector<std::uint8_t> &payload() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Wrap @p payload in a frame (4-byte LE length + payload). */
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t> &payload);

/** Encode/decode a CampaignSpec body (no type byte -- callers add
 *  MsgType::Submit when framing, or spool the raw body to a file). */
void encodeSpec(WireWriter &writer, const CampaignSpec &spec);
CampaignSpec decodeSpec(WireReader &reader);

/**
 * Incremental frame reassembly over a byte stream.  Feed whatever the
 * socket produced; next() yields one complete payload at a time.  An
 * oversized announced length throws ProtocolError immediately (the
 * bytes are never buffered).
 */
class FrameReader
{
  public:
    void feed(const std::uint8_t *data, std::size_t size);

    /** Pop the next complete payload into @p payload; false if none. */
    bool next(std::vector<std::uint8_t> &payload);

  private:
    std::vector<std::uint8_t> buffer_;
    std::size_t scan_ = 0; ///< consumed prefix, compacted lazily
};

} // namespace fsp::service

#endif // FSP_SERVICE_PROTOCOL_HH
