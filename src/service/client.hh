/**
 * @file
 * Blocking client for the campaign service: connect to a daemon over
 * its unix socket or TCP loopback port, submit campaigns, stream the
 * job's progress events, and fetch status/metrics.  Used by
 * `fsp submit` / `fsp shutdown` and by the service tests.
 */

#ifndef FSP_SERVICE_CLIENT_HH
#define FSP_SERVICE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.hh"

namespace fsp::service {

/** Daemon-side status snapshot (StatusReply decoded). */
struct ServiceStatus
{
    std::uint64_t jobsQueued = 0;
    std::uint64_t jobsDone = 0;
    std::uint64_t jobsFailed = 0;
    std::uint64_t activeJob = 0; ///< 0 when idle
    std::uint32_t shardsDone = 0;
    std::uint32_t shardCount = 0;
    std::uint64_t sitesDone = 0;
    std::uint64_t sitesTotal = 0;
};

/** One streamed progress update (Progress decoded). */
struct JobProgress
{
    std::uint64_t jobId = 0;
    std::uint32_t shard = 0;
    std::uint64_t shardSitesDone = 0;
    std::uint64_t shardSitesTotal = 0;
    std::uint64_t jobSitesDone = 0;
    std::uint64_t jobSitesTotal = 0;
};

/** Terminal job event (JobDone decoded). */
struct JobOutcome
{
    std::uint64_t jobId = 0;
    bool ok = false;
    std::string message;
};

class ServiceClient
{
  public:
    /** @{ Factory: connect or throw EndpointError. */
    static ServiceClient connectUnixSocket(const std::string &path);
    static ServiceClient connectLoopback(std::uint16_t port);
    /** @} */

    ServiceClient(ServiceClient &&other) noexcept;
    ServiceClient &operator=(ServiceClient &&other) noexcept;
    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;
    ~ServiceClient();

    /** Round-trip a Ping; throws on anything but Pong. */
    void ping();

    /**
     * Submit a campaign whose shard journals land at
     * @p journalBase.shard<i>of<N>.fspj.  Returns the job id; the
     * connection is then subscribed to the job's event stream --
     * consume it with waitJob().  Throws ProtocolError on an
     * ErrorReply.
     */
    std::uint64_t submit(const CampaignSpec &spec,
                         const std::string &journalBase);

    /**
     * Block until the job finishes, invoking @p onProgress (when
     * non-null) for every streamed Progress event.  Returns the
     * terminal outcome.
     */
    JobOutcome
    waitJob(std::uint64_t jobId,
            const std::function<void(const JobProgress &)> &onProgress =
                nullptr);

    ServiceStatus status();

    /** The daemon's Prometheus metrics snapshot. */
    std::string metricsText();

    /** Ask the daemon to shut down (reply confirmed). */
    void shutdownServer();

    /** Send one raw pre-framed byte blob (fuzz/protocol tests). */
    void sendRaw(const void *bytes, std::size_t size);

  private:
    explicit ServiceClient(int fd) : fd_(fd) {}

    void sendPayload(const std::vector<std::uint8_t> &payload);

    /** Next complete frame payload (blocking); throws on EOF. */
    std::vector<std::uint8_t> readFrame();

    int fd_ = -1;
    FrameReader frames_;
};

} // namespace fsp::service

#endif // FSP_SERVICE_CLIENT_HH
