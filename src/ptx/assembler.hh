/**
 * @file
 * Assembler for the textual PTXPlus-flavoured ISA.
 *
 * Kernels are written as plain text (one instruction per line, PTX-style
 * dotted mnemonics, labels, predication) and assembled into decoded
 * sim::Program objects.  The accepted syntax mirrors the PTXPlus
 * listings shown in the paper's Figure 5, e.g.:
 *
 *     shl.u32 $r3, $r1, 0x00000001;
 *     set.eq.s32.s32 $p0|$o127, $r6, $r1;
 *     @$p0.ne bra l0x000002b8;
 *     ld.global.f32 $r5, [$r4+0x10];
 *     l0x000002b8: bar.sync 0;
 */

#ifndef FSP_PTX_ASSEMBLER_HH
#define FSP_PTX_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "sim/program.hh"

namespace fsp::ptx {

/** Raised on any syntax or semantic error, with line context. */
class AssemblyError : public std::runtime_error
{
  public:
    AssemblyError(unsigned line, const std::string &message)
        : std::runtime_error("line " + std::to_string(line) + ": " +
                             message),
          line_(line)
    {
    }

    unsigned line() const { return line_; }

  private:
    unsigned line_;
};

/**
 * Assemble kernel source text into a decoded program.
 *
 * @param name kernel name recorded in the program.
 * @param source assembly text; '//' and '#' start comments; ';' line
 *        terminators are optional.
 * @throws AssemblyError on malformed input or unresolved labels.
 */
sim::Program assemble(const std::string &name, const std::string &source);

} // namespace fsp::ptx

#endif // FSP_PTX_ASSEMBLER_HH
