/**
 * @file
 * Implementation of the PTXPlus-style assembler: a small hand-written
 * line-oriented parser producing decoded sim::Instruction streams.
 */

#include "ptx/assembler.hh"

#include <bit>
#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "util/logging.hh"

namespace fsp::ptx {

using sim::CmpOp;
using sim::DataType;
using sim::Guard;
using sim::GuardCond;
using sim::HalfSel;
using sim::Instruction;
using sim::MemSpace;
using sim::Opcode;
using sim::Operand;
using sim::SpecialReg;

namespace {

/** Split a string on a delimiter character. */
std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : text) {
        if (c == delim) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0, end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Split an operand list on top-level commas (ignores commas in []). */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> out;
    std::string current;
    int depth = 0;
    for (char c : text) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    std::string last = trim(current);
    if (!last.empty() || !out.empty())
        out.push_back(last);
    return out;
}

/** Parsed integer literal (decimal or 0x hex, optional leading '-'). */
std::optional<std::int64_t>
parseIntLiteral(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    std::size_t pos = 0;
    bool neg = false;
    if (text[pos] == '-' || text[pos] == '+') {
        neg = text[pos] == '-';
        ++pos;
    }
    if (pos >= text.size())
        return std::nullopt;
    int base = 10;
    if (text.size() - pos > 2 && text[pos] == '0' &&
        (text[pos + 1] == 'x' || text[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
    }
    char *end = nullptr;
    const char *start = text.c_str() + pos;
    errno = 0;
    unsigned long long mag = std::strtoull(start, &end, base);
    if (end == start || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    auto value = static_cast<std::int64_t>(mag);
    return neg ? -value : value;
}

/** Parsed float literal ("1.5", "2e-3", "1.0f"). */
std::optional<double>
parseFloatLiteral(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    std::string body = text;
    if (body.back() == 'f' || body.back() == 'F')
        body.pop_back();
    char *end = nullptr;
    const char *start = body.c_str();
    double value = std::strtod(start, &end);
    if (end == start || *end != '\0')
        return std::nullopt;
    return value;
}

const std::map<std::string, SpecialReg> kSpecials = {
    {"%tid.x", SpecialReg::TidX},       {"%tid.y", SpecialReg::TidY},
    {"%tid.z", SpecialReg::TidZ},       {"%ntid.x", SpecialReg::NtidX},
    {"%ntid.y", SpecialReg::NtidY},     {"%ntid.z", SpecialReg::NtidZ},
    {"%ctaid.x", SpecialReg::CtaidX},   {"%ctaid.y", SpecialReg::CtaidY},
    {"%ctaid.z", SpecialReg::CtaidZ},   {"%nctaid.x", SpecialReg::NctaidX},
    {"%nctaid.y", SpecialReg::NctaidY}, {"%nctaid.z", SpecialReg::NctaidZ},
};

GuardCond
parseGuardCond(const std::string &name, unsigned line)
{
    if (name == "eq") return GuardCond::Eq;
    if (name == "ne") return GuardCond::Ne;
    if (name == "lt") return GuardCond::Lt;
    if (name == "le") return GuardCond::Le;
    if (name == "gt") return GuardCond::Gt;
    if (name == "ge") return GuardCond::Ge;
    throw AssemblyError(line, "unknown guard condition '" + name + "'");
}

DataType
requireType(const std::string &name, unsigned line)
{
    // b-prefixed (untyped bit) aliases map to unsigned.
    if (name == "b16")
        return DataType::U16;
    if (name == "b32")
        return DataType::U32;
    if (name == "b64")
        return DataType::U64;
    DataType t = sim::parseType(name);
    if (t == DataType::None)
        throw AssemblyError(line, "unknown type suffix '" + name + "'");
    return t;
}

/** One parsed-but-unresolved instruction. */
struct PendingInstruction
{
    Instruction insn;
    std::string branchLabel; ///< non-empty for bra until resolution
    unsigned line;
};

/** Parser for a single instruction line. */
class LineParser
{
  public:
    LineParser(const std::string &text, unsigned line)
        : text_(text), line_(line)
    {
    }

    /** Parse the (already label-stripped, trimmed) instruction body. */
    PendingInstruction
    parse()
    {
        PendingInstruction pending;
        pending.line = line_;
        Instruction &insn = pending.insn;
        insn.line = line_;
        insn.text = text_;

        std::string body = text_;

        // Guard prefix: "@$p0.ne ".
        if (!body.empty() && body[0] == '@') {
            std::size_t space = body.find(' ');
            if (space == std::string::npos)
                throw AssemblyError(line_, "guard without instruction");
            std::string guard = body.substr(1, space - 1);
            body = trim(body.substr(space + 1));
            auto parts = split(guard, '.');
            if (parts.size() != 2 || parts[0].size() < 3 ||
                parts[0][0] != '$' || parts[0][1] != 'p') {
                throw AssemblyError(line_,
                                    "malformed guard '@" + guard + "'");
            }
            insn.guard.pred = parsePredIndex(parts[0]);
            insn.guard.cond = parseGuardCond(parts[1], line_);
        }

        // Mnemonic token (up to first whitespace).
        std::size_t space = body.find_first_of(" \t");
        std::string mnemonic =
            space == std::string::npos ? body : body.substr(0, space);
        std::string operand_text =
            space == std::string::npos ? "" : trim(body.substr(space + 1));

        parseMnemonic(mnemonic, insn);

        std::vector<std::string> operands = splitOperands(operand_text);
        if (operands.size() == 1 && operands[0].empty())
            operands.clear();

        assignOperands(insn, operands, pending.branchLabel);
        return pending;
    }

  private:
    unsigned
    parseGpIndex(const std::string &token)
    {
        // "$rN"
        auto value = parseIntLiteral(token.substr(2));
        if (!value || *value < 0 ||
            *value >= static_cast<std::int64_t>(sim::kNumGpRegs)) {
            throw AssemblyError(line_,
                                "bad register '" + token + "'");
        }
        return static_cast<unsigned>(*value);
    }

    std::uint8_t
    parsePredIndex(const std::string &token)
    {
        auto value = parseIntLiteral(token.substr(2));
        if (!value || *value < 0 ||
            *value >= static_cast<std::int64_t>(sim::kNumPredRegs)) {
            throw AssemblyError(line_,
                                "bad predicate register '" + token + "'");
        }
        return static_cast<std::uint8_t>(*value);
    }

    /** Decode dotted mnemonic into opcode/type/stype/cmp/space. */
    void
    parseMnemonic(const std::string &mnemonic, Instruction &insn)
    {
        auto parts = split(mnemonic, '.');
        const std::string &base = parts[0];

        // Drop benign PTXPlus modifiers anywhere after the base.
        std::vector<std::string> mods;
        for (std::size_t i = 1; i < parts.size(); ++i) {
            if (parts[i] == "half" || parts[i] == "uni" ||
                parts[i] == "sat" || parts[i] == "ftz" ||
                parts[i] == "approx" || parts[i] == "rn" ||
                parts[i] == "rz") {
                continue;
            }
            mods.push_back(parts[i]);
        }

        auto expect_mods = [&](std::size_t n) {
            if (mods.size() != n) {
                throw AssemblyError(line_, "mnemonic '" + mnemonic +
                                               "' has unexpected suffixes");
            }
        };

        if (base == "bar") {
            if (!(mods.size() == 1 && mods[0] == "sync"))
                throw AssemblyError(line_, "expected bar.sync");
            insn.op = Opcode::Bar;
            return;
        }
        if (base == "bra") {
            expect_mods(0);
            insn.op = Opcode::Bra;
            return;
        }
        if (base == "ssy") {
            expect_mods(0);
            insn.op = Opcode::Ssy;
            return;
        }
        if (base == "nop") {
            expect_mods(0);
            insn.op = Opcode::Nop;
            return;
        }
        if (base == "retp" || base == "ret") {
            expect_mods(0);
            insn.op = Opcode::Ret;
            return;
        }
        if (base == "exit") {
            expect_mods(0);
            insn.op = Opcode::Exit;
            return;
        }
        if (base == "ld" || base == "st") {
            expect_mods(2);
            insn.op = base == "ld" ? Opcode::Ld : Opcode::St;
            if (mods[0] == "global")
                insn.space = MemSpace::Global;
            else if (mods[0] == "shared")
                insn.space = MemSpace::Shared;
            else if (mods[0] == "param")
                insn.space = MemSpace::Param;
            else
                throw AssemblyError(line_, "unknown address space '" +
                                               mods[0] + "'");
            insn.type = requireType(mods[1], line_);
            return;
        }
        if (base == "cvt") {
            expect_mods(2);
            insn.op = Opcode::Cvt;
            insn.type = requireType(mods[0], line_);
            insn.stype = requireType(mods[1], line_);
            return;
        }
        if (base == "set") {
            expect_mods(3);
            insn.op = Opcode::Set;
            insn.cmp = sim::parseCmp(mods[0]);
            if (insn.cmp == CmpOp::None)
                throw AssemblyError(line_, "unknown comparison '" +
                                               mods[0] + "'");
            insn.type = requireType(mods[1], line_);
            insn.stype = requireType(mods[2], line_);
            return;
        }
        if (base == "setp") {
            expect_mods(2);
            insn.op = Opcode::Setp;
            insn.cmp = sim::parseCmp(mods[0]);
            if (insn.cmp == CmpOp::None)
                throw AssemblyError(line_, "unknown comparison '" +
                                               mods[0] + "'");
            insn.type = DataType::Pred;
            insn.stype = requireType(mods[1], line_);
            return;
        }
        if ((base == "mul" || base == "mad") && !mods.empty() &&
            mods[0] == "wide") {
            expect_mods(2);
            insn.op = base == "mul" ? Opcode::MulWide : Opcode::MadWide;
            insn.type = requireType(mods[1], line_);
            return;
        }
        if ((base == "mul" || base == "mad") && !mods.empty() &&
            mods[0] == "lo") {
            expect_mods(2);
            insn.op = base == "mul" ? Opcode::Mul : Opcode::Mad;
            insn.type = requireType(mods[1], line_);
            return;
        }

        Opcode op;
        if (!sim::parseOpcode(base, op))
            throw AssemblyError(line_, "unknown opcode '" + base + "'");
        insn.op = op;
        expect_mods(1);
        insn.type = requireType(mods[0], line_);
        if (insn.op == Opcode::Set || insn.op == Opcode::Setp)
            throw AssemblyError(line_, "set/setp need a comparison");
        return;
    }

    /** Parse a destination operand ("$r3", "$p0|$o127", "$p0/$r1"). */
    void
    parseDest(Instruction &insn, const std::string &token)
    {
        std::size_t sep = token.find_first_of("|/");
        if (sep != std::string::npos) {
            std::string first = trim(token.substr(0, sep));
            std::string second = trim(token.substr(sep + 1));
            if (first.rfind("$p", 0) != 0) {
                throw AssemblyError(
                    line_, "dual destination must start with a predicate");
            }
            insn.dest = Operand::makePredReg(parsePredIndex(first));
            insn.dest2 = parseValueOperand(second);
            if (insn.dest2.kind != Operand::Kind::GpReg &&
                insn.dest2.kind != Operand::Kind::Discard) {
                throw AssemblyError(line_,
                                    "secondary destination must be $rN or "
                                    "$o127");
            }
            return;
        }
        Operand dest = parseValueOperand(token);
        if (dest.kind != Operand::Kind::GpReg &&
            dest.kind != Operand::Kind::PredReg &&
            dest.kind != Operand::Kind::Discard) {
            throw AssemblyError(line_, "bad destination '" + token + "'");
        }
        if (dest.kind == Operand::Kind::GpReg &&
            (dest.negated || dest.half != HalfSel::None)) {
            throw AssemblyError(line_,
                                "destination cannot be negated or a half");
        }
        insn.dest = dest;
    }

    /** Parse a non-memory operand. */
    Operand
    parseValueOperand(const std::string &raw)
    {
        std::string token = trim(raw);
        if (token.empty())
            throw AssemblyError(line_, "empty operand");

        bool negated = false;
        if (token[0] == '-' && token.size() > 1 && token[1] == '$') {
            negated = true;
            token = token.substr(1);
        }

        if (token == "$o127") {
            if (negated)
                throw AssemblyError(line_, "cannot negate $o127");
            return Operand::makeDiscard();
        }
        if (token.rfind("$p", 0) == 0) {
            if (negated)
                throw AssemblyError(line_, "cannot negate a predicate");
            return Operand::makePredReg(parsePredIndex(token));
        }
        if (token.rfind("$r", 0) == 0) {
            HalfSel half = HalfSel::None;
            std::string body = token;
            if (body.size() > 3 &&
                body.compare(body.size() - 3, 3, ".lo") == 0) {
                half = HalfSel::Lo;
                body = body.substr(0, body.size() - 3);
            } else if (body.size() > 3 &&
                       body.compare(body.size() - 3, 3, ".hi") == 0) {
                half = HalfSel::Hi;
                body = body.substr(0, body.size() - 3);
            }
            return Operand::makeGpReg(parseGpIndex(body), half, negated);
        }
        if (token[0] == '%') {
            auto it = kSpecials.find(token);
            if (it == kSpecials.end())
                throw AssemblyError(line_, "unknown special register '" +
                                               token + "'");
            if (negated)
                throw AssemblyError(line_,
                                    "cannot negate a special register");
            return Operand::makeSpecial(it->second);
        }

        // Immediate.
        if (auto iv = parseIntLiteral(token))
            return Operand::makeImm(static_cast<std::uint64_t>(*iv));
        if (auto fv = parseFloatLiteral(token)) {
            // The payload encoding depends on the instruction type;
            // resolved by the caller via fixImmEncoding().
            Operand o = Operand::makeImm(
                std::bit_cast<std::uint64_t>(*fv));
            o.half = HalfSel::Hi; // temporary marker: "float literal"
            return o;
        }
        throw AssemblyError(line_, "cannot parse operand '" + raw + "'");
    }

    /** Parse "[...]" memory operand. */
    Operand
    parseMemOperand(const std::string &raw)
    {
        std::string token = trim(raw);
        if (token.size() < 2 || token.front() != '[' || token.back() != ']')
            throw AssemblyError(line_, "expected memory operand, got '" +
                                           raw + "'");
        std::string inner = trim(token.substr(1, token.size() - 2));
        if (inner.empty())
            throw AssemblyError(line_, "empty memory operand");

        std::int32_t base = -1;
        std::int64_t offset = 0;
        if (inner[0] == '$') {
            std::size_t plus = inner.find_first_of("+-", 1);
            std::string reg = trim(
                plus == std::string::npos ? inner : inner.substr(0, plus));
            if (reg.rfind("$r", 0) != 0)
                throw AssemblyError(line_, "memory base must be $rN");
            base = static_cast<std::int32_t>(parseGpIndex(reg));
            if (plus != std::string::npos) {
                std::string rest = trim(inner.substr(plus));
                if (!rest.empty() && rest[0] == '+')
                    rest = trim(rest.substr(1));
                auto value = parseIntLiteral(rest);
                if (!value)
                    throw AssemblyError(line_, "bad memory offset '" +
                                                   rest + "'");
                offset = *value;
            }
        } else {
            auto value = parseIntLiteral(inner);
            if (!value)
                throw AssemblyError(line_, "bad memory address '" + inner +
                                               "'");
            offset = *value;
        }
        return Operand::makeMemRef(base, offset);
    }

    /**
     * Re-encode a float-literal immediate for the instruction type.
     * parseValueOperand stores the double bits with a marker; here the
     * payload becomes f32 bits, f64 bits, or an integral conversion.
     */
    void
    fixImmEncoding(Operand &o, DataType type)
    {
        if (o.kind != Operand::Kind::Imm)
            return;
        if (o.half == HalfSel::Hi) {
            // Marked float literal.
            double v = std::bit_cast<double>(o.imm);
            o.half = HalfSel::None;
            if (type == DataType::F64)
                o.imm = std::bit_cast<std::uint64_t>(v);
            else if (type == DataType::F32)
                o.imm = std::bit_cast<std::uint32_t>(static_cast<float>(v));
            else
                throw AssemblyError(line_,
                                    "float literal used in integer context");
            return;
        }
        // Integer literal in a float context encodes the *value*
        // ("mov.f32 $r1, 2" means 2.0f), matching PTX semantics.
        if (type == DataType::F32) {
            auto v = static_cast<std::int64_t>(o.imm);
            o.imm = std::bit_cast<std::uint32_t>(static_cast<float>(v));
        } else if (type == DataType::F64) {
            auto v = static_cast<std::int64_t>(o.imm);
            o.imm = std::bit_cast<std::uint64_t>(static_cast<double>(v));
        }
    }

    void
    assignOperands(Instruction &insn, std::vector<std::string> &operands,
                   std::string &branch_label)
    {
        switch (insn.op) {
          case Opcode::Nop:
          case Opcode::Ssy:
          case Opcode::Ret:
          case Opcode::Exit:
            // ssy takes an (ignored) reconvergence point operand.
            return;

          case Opcode::Bar: {
            if (operands.size() != 1)
                throw AssemblyError(line_, "bar.sync takes a barrier id");
            auto value = parseIntLiteral(operands[0]);
            if (!value || *value < 0)
                throw AssemblyError(line_, "bad barrier id");
            insn.barrier = static_cast<std::uint32_t>(*value);
            return;
          }

          case Opcode::Bra: {
            if (operands.size() != 1)
                throw AssemblyError(line_, "bra takes one target label");
            const std::string &target = operands[0];
            if (target.empty() || !isIdentChar(target[0]))
                throw AssemblyError(line_, "bad branch target '" + target +
                                               "'");
            branch_label = target;
            return;
          }

          case Opcode::Ld: {
            if (operands.size() != 2)
                throw AssemblyError(line_, "ld takes dest, [addr]");
            parseDest(insn, operands[0]);
            insn.src[0] = parseMemOperand(operands[1]);
            return;
          }

          case Opcode::St: {
            if (operands.size() != 2)
                throw AssemblyError(line_, "st takes [addr], src");
            if (insn.space == MemSpace::Param)
                throw AssemblyError(line_,
                                    "param space is read-only");
            insn.src[0] = parseMemOperand(operands[0]);
            insn.src[1] = parseValueOperand(operands[1]);
            fixImmEncoding(insn.src[1], insn.type);
            return;
          }

          default: {
            unsigned n = sim::opcodeSrcCount(insn.op);
            if (operands.size() != n + 1) {
                throw AssemblyError(
                    line_, opcodeName(insn.op) + " takes " +
                               std::to_string(n + 1) + " operands, got " +
                               std::to_string(operands.size()));
            }
            parseDest(insn, operands[0]);
            DataType value_type =
                insn.op == Opcode::Cvt || insn.op == Opcode::Set ||
                        insn.op == Opcode::Setp
                    ? insn.stype
                    : insn.type;
            for (unsigned i = 0; i < n; ++i) {
                insn.src[i] = parseValueOperand(operands[i + 1]);
                fixImmEncoding(insn.src[i], value_type);
            }
            return;
          }
        }
    }

    const std::string &text_;
    unsigned line_;
};

} // namespace

sim::Program
assemble(const std::string &name, const std::string &source)
{
    std::vector<PendingInstruction> pending;
    std::map<std::string, std::size_t> labels;

    std::istringstream stream(source);
    std::string raw_line;
    unsigned line_number = 0;

    while (std::getline(stream, raw_line)) {
        ++line_number;
        // Strip comments.
        std::string line = raw_line;
        for (const char *marker : {"//", "#"}) {
            std::size_t at = line.find(marker);
            if (at != std::string::npos)
                line = line.substr(0, at);
        }
        line = trim(line);
        if (line.empty())
            continue;
        if (!line.empty() && line.back() == ';')
            line = trim(line.substr(0, line.size() - 1));
        if (line.empty())
            continue;

        // Leading labels: "name: ..." (possibly several).
        while (true) {
            std::size_t colon = line.find(':');
            if (colon == std::string::npos)
                break;
            std::string maybe_label = trim(line.substr(0, colon));
            bool is_label = !maybe_label.empty();
            for (char c : maybe_label) {
                if (!isIdentChar(c))
                    is_label = false;
            }
            // Guard prefixes contain '@' before any colon; they never
            // look like labels because '@'/'$' fail isIdentChar.
            if (!is_label)
                break;
            if (labels.count(maybe_label)) {
                throw AssemblyError(line_number, "duplicate label '" +
                                                     maybe_label + "'");
            }
            labels[maybe_label] = pending.size();
            line = trim(line.substr(colon + 1));
            if (line.empty())
                break;
        }
        if (line.empty())
            continue; // label-only line

        LineParser parser(line, line_number);
        pending.push_back(parser.parse());
    }

    // Resolve branch targets.
    std::vector<Instruction> code;
    code.reserve(pending.size());
    for (auto &p : pending) {
        if (!p.branchLabel.empty()) {
            auto it = labels.find(p.branchLabel);
            if (it == labels.end()) {
                throw AssemblyError(p.line, "undefined label '" +
                                                p.branchLabel + "'");
            }
            p.insn.target = static_cast<std::int32_t>(it->second);
        }
        code.push_back(std::move(p.insn));
    }

    sim::Program program(name, std::move(code), std::move(labels));
    program.validate();
    return program;
}

} // namespace fsp::ptx
