/**
 * @file
 * Rodinia LU Decomposition (LUD), the three tile kernels of one
 * decomposition step (invocations K44/K45/K46 in the paper):
 *  - lud_diagonal (K46, 16 threads): factors the diagonal tile in
 *    place; nested elimination loops, 120 inner iterations (Table VII);
 *  - lud_perimeter (K44, 32 threads): triangular solves for one row
 *    strip and one column strip, the two CTA halves running disjoint
 *    loop nests (120 iterations each);
 *  - lud_internal (K45, 256 threads): rank-BS update of an interior
 *    tile with a fully unrolled dot product -- loop-free (Table VII).
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

unsigned
tileSide(Scale scale)
{
    return scale == Scale::Paper ? 16 : 8;
}

std::string
diagonalSource(unsigned bs)
{
    std::string BS = std::to_string(bs);
    std::string BSm1 = std::to_string(bs - 1);
    // Params: [0]=a (bs x bs tile).
    // Inactive threads (tid <= i) branch around both the division and
    // the trailing-row update, as real compiled code does -- their
    // per-thread iCnt therefore differs, which is what thread-wise
    // grouping keys on.
    return R"(
    cvt.u32.u16 $r1, %tid.x;      // tid
    mov.u32 $r2, 0x00000000;      // i
    ld.param.u32 $r3, [0];        // a
diag_outer:
    set.gt.u32.u32 $p1|$o127, $r1, $r2;  // active iff tid > i
    @$p1.eq bra diag_div_done;           // inactive: skip division
    mul.lo.u32 $r4, $r1, )" + BS + R"(;
    add.u32 $r4, $r4, $r2;
    shl.u32 $r4, $r4, 0x00000002;
    add.u32 $r4, $r3, $r4;               // &a[tid][i]
    mul.lo.u32 $r5, $r2, )" + BS + R"(;
    add.u32 $r5, $r5, $r2;
    shl.u32 $r5, $r5, 0x00000002;
    add.u32 $r5, $r3, $r5;               // &a[i][i]
    ld.global.f32 $r6, [$r4];
    ld.global.f32 $r7, [$r5];
    div.f32 $r6, $r6, $r7;
    st.global.f32 [$r4], $r6;
diag_div_done:
    bar.sync 0;
    @$p1.eq bra diag_update_done;        // inactive: skip the update
    add.u32 $r8, $r2, 0x00000001;        // j = i+1
diag_inner:
    mul.lo.u32 $r9, $r1, )" + BS + R"(;
    add.u32 $r9, $r9, $r8;
    shl.u32 $r9, $r9, 0x00000002;
    add.u32 $r9, $r3, $r9;               // &a[tid][j]
    ld.global.f32 $r10, [$r9];
    mul.lo.u32 $r11, $r2, )" + BS + R"(;
    add.u32 $r11, $r11, $r8;
    shl.u32 $r11, $r11, 0x00000002;
    add.u32 $r11, $r3, $r11;             // &a[i][j]
    ld.global.f32 $r12, [$r11];
    ld.global.f32 $r13, [$r4];           // a[tid][i]
    mul.f32 $r12, $r12, $r13;
    sub.f32 $r10, $r10, $r12;
    st.global.f32 [$r9], $r10;
    add.u32 $r8, $r8, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r8, )" + BS + R"(;
    @$p0.ne bra diag_inner;
diag_update_done:
    bar.sync 0;
    add.u32 $r2, $r2, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r2, )" + BSm1 + R"(;
    @$p0.ne bra diag_outer;
    retp;
)";
}

std::string
perimeterSource(unsigned bs)
{
    std::string BS = std::to_string(bs);
    // Params: [0]=D (factored diagonal tile), [4]=R (row strip),
    // [8]=C (column strip).
    return R"(
    cvt.u32.u16 $r1, %tid.x;
    set.lt.u32.u32 $p2|$o127, $r1, )" + BS + R"(;
    @$p2.eq bra perim_col;        // threads >= BS handle the column strip
    // --- Row strip: forward substitution on column $r1 of R.
    mov.u32 $r2, 0x00000001;      // i
    ld.param.u32 $r3, [0];        // D
    ld.param.u32 $r4, [4];        // R
prow_outer:
    mul.lo.u32 $r5, $r2, )" + BS + R"(;
    add.u32 $r6, $r5, $r1;
    shl.u32 $r6, $r6, 0x00000002;
    add.u32 $r6, $r4, $r6;        // &R[i][col]
    ld.global.f32 $r7, [$r6];
    mov.u32 $r8, 0x00000000;      // k
prow_inner:
    mul.lo.u32 $r9, $r2, )" + BS + R"(;
    add.u32 $r9, $r9, $r8;
    shl.u32 $r9, $r9, 0x00000002;
    add.u32 $r9, $r3, $r9;        // &D[i][k]
    ld.global.f32 $r10, [$r9];
    mul.lo.u32 $r11, $r8, )" + BS + R"(;
    add.u32 $r11, $r11, $r1;
    shl.u32 $r11, $r11, 0x00000002;
    add.u32 $r11, $r4, $r11;      // &R[k][col]
    ld.global.f32 $r12, [$r11];
    mul.f32 $r10, $r10, $r12;
    sub.f32 $r7, $r7, $r10;
    add.u32 $r8, $r8, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r8, $r2;
    @$p0.ne bra prow_inner;
    st.global.f32 [$r6], $r7;
    add.u32 $r2, $r2, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r2, )" + BS + R"(;
    @$p0.ne bra prow_outer;
    retp;
perim_col:
    // --- Column strip: row ($r1 - BS) of C against the upper factor.
    sub.u32 $r1, $r1, )" + BS + R"(;
    mov.u32 $r2, 0x00000000;      // j
    ld.param.u32 $r3, [0];        // D
    ld.param.u32 $r4, [8];        // C
pcol_outer:
    mul.lo.u32 $r5, $r1, )" + BS + R"(;
    add.u32 $r6, $r5, $r2;
    shl.u32 $r6, $r6, 0x00000002;
    add.u32 $r6, $r4, $r6;        // &C[row][j]
    ld.global.f32 $r7, [$r6];
    mov.u32 $r8, 0x00000000;      // k
    set.eq.u32.u32 $p0|$o127, $r2, 0x00000000;
    @$p0.ne bra pcol_skip;        // j == 0: nothing to subtract
pcol_inner:
    mul.lo.u32 $r9, $r1, )" + BS + R"(;
    add.u32 $r9, $r9, $r8;
    shl.u32 $r9, $r9, 0x00000002;
    add.u32 $r9, $r4, $r9;        // &C[row][k]
    ld.global.f32 $r10, [$r9];
    mul.lo.u32 $r11, $r8, )" + BS + R"(;
    add.u32 $r11, $r11, $r2;
    shl.u32 $r11, $r11, 0x00000002;
    add.u32 $r11, $r3, $r11;      // &D[k][j]
    ld.global.f32 $r12, [$r11];
    mul.f32 $r10, $r10, $r12;
    sub.f32 $r7, $r7, $r10;
    add.u32 $r8, $r8, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r8, $r2;
    @$p0.ne bra pcol_inner;
pcol_skip:
    mul.lo.u32 $r13, $r2, )" + BS + R"(;
    add.u32 $r13, $r13, $r2;
    shl.u32 $r13, $r13, 0x00000002;
    add.u32 $r13, $r3, $r13;      // &D[j][j]
    ld.global.f32 $r14, [$r13];
    div.f32 $r7, $r7, $r14;
    st.global.f32 [$r6], $r7;
    add.u32 $r2, $r2, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r2, )" + BS + R"(;
    @$p0.ne bra pcol_outer;
    retp;
)";
}

std::string
internalSource(unsigned bs)
{
    // Params: [0]=A (row factor), [4]=B (column factor), [8]=Cm.
    std::string s;
    s += R"(
    cvt.u32.u16 $r1, %tid.x;      // tj
    cvt.u32.u16 $r2, %tid.y;      // ti
    ld.param.u32 $r3, [0];
)";
    s += "    mul.lo.u32 $r4, $r2, " + std::to_string(bs) + ";\n";
    s += R"(
    shl.u32 $r4, $r4, 0x00000002;
    add.u32 $r3, $r3, $r4;        // &A[ti*bs]
    ld.param.u32 $r5, [4];
    shl.u32 $r6, $r1, 0x00000002;
    add.u32 $r5, $r5, $r6;        // &B[tj]
    ld.param.u32 $r7, [8];
)";
    s += "    mul.lo.u32 $r8, $r2, " + std::to_string(bs) + ";\n";
    s += R"(
    add.u32 $r8, $r8, $r1;
    shl.u32 $r8, $r8, 0x00000002;
    add.u32 $r7, $r7, $r8;        // &C[ti][tj]
    ld.global.f32 $r9, [$r7];
)";
    for (unsigned k = 0; k < bs; ++k) {
        s += "    ld.global.f32 $r10, [$r3+" + std::to_string(4 * k) +
             "];\n";
        s += "    ld.global.f32 $r11, [$r5+" +
             std::to_string(4 * k * bs) + "];\n";
        s += "    mul.f32 $r10, $r10, $r11;\n";
        s += "    sub.f32 $r9, $r9, $r10;\n";
    }
    s += R"(
    st.global.f32 [$r7], $r9;
    retp;
)";
    return s;
}

std::uint64_t
uploadTile(sim::GlobalMemory &memory, unsigned bs, std::uint64_t seed,
           float diag_boost)
{
    std::uint64_t addr = memory.allocate(4ull * bs * bs);
    auto tile = randomFloats(bs * bs, seed, 0.1f, 1.0f);
    if (diag_boost > 0.0f) {
        for (unsigned i = 0; i < bs; ++i)
            tile[i * bs + i] += diag_boost;
    }
    uploadFloats(memory, addr, tile);
    return addr;
}

KernelSetup
setupDiagonal(Scale scale, std::uint64_t seed)
{
    unsigned bs = tileSide(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("lud_diagonal", diagonalSource(bs));
    setup.memory = sim::GlobalMemory(1u << 20);
    std::uint64_t a =
        uploadTile(setup.memory, bs, seed + 1, static_cast<float>(bs));

    setup.launch.grid = {1, 1, 1};
    setup.launch.block = {bs, 1, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));

    setup.outputs.push_back({"tile", a, 4ull * bs * bs,
                             faults::ElemType::F32, 0.0, bs});
    return setup;
}

KernelSetup
setupPerimeter(Scale scale, std::uint64_t seed)
{
    unsigned bs = tileSide(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("lud_perimeter", perimeterSource(bs));
    setup.memory = sim::GlobalMemory(1u << 20);
    std::uint64_t d =
        uploadTile(setup.memory, bs, seed + 1, static_cast<float>(bs));
    std::uint64_t r = uploadTile(setup.memory, bs, seed + 2, 0.0f);
    std::uint64_t c = uploadTile(setup.memory, bs, seed + 3, 0.0f);

    setup.launch.grid = {1, 1, 1};
    setup.launch.block = {2 * bs, 1, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(d));
    setup.launch.params.addU32(static_cast<std::uint32_t>(r));
    setup.launch.params.addU32(static_cast<std::uint32_t>(c));

    setup.outputs.push_back({"row_strip", r, 4ull * bs * bs,
                             faults::ElemType::F32, 0.0, bs});
    setup.outputs.push_back({"col_strip", c, 4ull * bs * bs,
                             faults::ElemType::F32, 0.0, bs});
    return setup;
}

KernelSetup
setupInternal(Scale scale, std::uint64_t seed)
{
    unsigned bs = tileSide(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("lud_internal", internalSource(bs));
    setup.memory = sim::GlobalMemory(1u << 20);
    std::uint64_t a = uploadTile(setup.memory, bs, seed + 1, 0.0f);
    std::uint64_t b = uploadTile(setup.memory, bs, seed + 2, 0.0f);
    std::uint64_t c = uploadTile(setup.memory, bs, seed + 3, 0.0f);

    setup.launch.grid = {1, 1, 1};
    setup.launch.block = {bs, bs, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));
    setup.launch.params.addU32(static_cast<std::uint32_t>(b));
    setup.launch.params.addU32(static_cast<std::uint32_t>(c));

    setup.outputs.push_back({"tile", c, 4ull * bs * bs,
                             faults::ElemType::F32, 0.0, bs});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeLudKernels()
{
    std::vector<KernelSpec> specs;
    specs.push_back(
        {"Rodinia", "LUD", "lud_perimeter", "K44", setupPerimeter});
    specs.push_back(
        {"Rodinia", "LUD", "lud_internal", "K45", setupInternal});
    specs.push_back(
        {"Rodinia", "LUD", "lud_diagonal", "K46", setupDiagonal});
    return specs;
}

} // namespace fsp::apps
