/**
 * @file
 * Kernel registry: collects every workload in the paper's Table I
 * order (plus Rodinia NN from Table VII).
 */

#include "apps/app.hh"
#include "apps/kernel_util.hh"

namespace fsp::apps {

const std::vector<KernelSpec> &
allKernels()
{
    static const std::vector<KernelSpec> kernels = [] {
        std::vector<KernelSpec> all;
        auto append = [&all](std::vector<KernelSpec> specs) {
            for (auto &spec : specs)
                all.push_back(std::move(spec));
        };
        // Rodinia (Table I order).
        append(makeHotspotKernels());
        append(makeKmeansKernels());
        append(makeGaussianKernels());
        append(makePathfinderKernels());
        append(makeLudKernels());
        // Polybench.
        append(makeConv2dKernels());
        append(makeMvtKernels());
        append(makeMm2Kernels());
        append(makeGemmKernels());
        append(makeSyrkKernels());
        // Table VII extra.
        append(makeNnKernels());
        return all;
    }();
    return kernels;
}

const KernelSpec *
findKernel(std::string_view full_name)
{
    for (const auto &spec : allKernels()) {
        if (spec.fullName() == full_name)
            return &spec;
    }
    return nullptr;
}

} // namespace fsp::apps
