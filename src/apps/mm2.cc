/**
 * @file
 * Polybench 2MM (mm2_kernel1): tmp = A x B, the first of 2mm's two
 * matrix products; plain K-loop accumulation, single thread group.
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct Mm2Geometry
{
    unsigned ni, nj, nk;
    unsigned block;
};

Mm2Geometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {128, 128, 128, 16}; // 16384 threads
    return {16, 16, 16, 8};
}

std::string
kernelSource()
{
    // Params: [0]=A, [4]=B, [8]=tmp, [12]=NJ, [16]=NK.
    std::string s;
    s += asmGlobalIdXY(1, 2); // $r1 = j, $r2 = i
    s += R"(
    ld.param.u32 $r3, [12];       // NJ
    ld.param.u32 $r4, [16];       // NK
    ld.param.u32 $r5, [0];        // A
    mul.lo.u32 $r6, $r2, $r4;
    shl.u32 $r6, $r6, 0x00000002;
    add.u32 $r5, $r5, $r6;        // &A[i*NK]
    ld.param.u32 $r7, [4];        // B
    shl.u32 $r8, $r1, 0x00000002;
    add.u32 $r7, $r7, $r8;        // &B[j]
    shl.u32 $r9, $r3, 0x00000002; // B row stride
    mov.f32 $r10, 0.0;
    mov.u32 $r11, 0x00000000;
mm2_loop:
    ld.global.f32 $r12, [$r5];
    ld.global.f32 $r13, [$r7];
    mad.f32 $r10, $r12, $r13, $r10;
    add.u32 $r5, $r5, 0x00000004;
    add.u32 $r7, $r7, $r9;
    add.u32 $r11, $r11, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r11, $r4;
    @$p0.ne bra mm2_loop;
    ld.param.u32 $r14, [8];       // tmp
    mul.lo.u32 $r15, $r2, $r3;
    add.u32 $r15, $r15, $r1;
    shl.u32 $r15, $r15, 0x00000002;
    add.u32 $r14, $r14, $r15;
    st.global.f32 [$r14], $r10;
    retp;
)";
    return s;
}

KernelSetup
setupMm2(Scale scale, std::uint64_t seed)
{
    Mm2Geometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("mm2_kernel1", kernelSource());

    setup.memory = sim::GlobalMemory(1u << 24);
    std::uint64_t a = setup.memory.allocate(4ull * g.ni * g.nk);
    std::uint64_t b = setup.memory.allocate(4ull * g.nk * g.nj);
    std::uint64_t tmp = setup.memory.allocate(4ull * g.ni * g.nj);
    uploadFloats(setup.memory, a, randomFloats(g.ni * g.nk, seed + 1));
    uploadFloats(setup.memory, b, randomFloats(g.nk * g.nj, seed + 2));
    uploadFloats(setup.memory, tmp,
                 std::vector<float>(g.ni * g.nj, 0.0f));

    setup.launch.grid = {g.nj / g.block, g.ni / g.block, 1};
    setup.launch.block = {g.block, g.block, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));
    setup.launch.params.addU32(static_cast<std::uint32_t>(b));
    setup.launch.params.addU32(static_cast<std::uint32_t>(tmp));
    setup.launch.params.addU32(g.nj);
    setup.launch.params.addU32(g.nk);

    setup.outputs.push_back({"tmp", tmp, 4ull * g.ni * g.nj,
                             faults::ElemType::F32, 0.0, g.ni});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeMm2Kernels()
{
    KernelSpec spec;
    spec.suite = "Polybench";
    spec.application = "2MM";
    spec.kernelName = "mm2_kernel1";
    spec.id = "K1";
    spec.setup = setupMm2;
    return {spec};
}

} // namespace fsp::apps
