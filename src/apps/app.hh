/**
 * @file
 * Workload interface: every evaluated kernel (paper Table I, 10
 * applications / 16 kernels from Rodinia and Polybench, plus Rodinia NN
 * from Table VII) is packaged as a KernelSpec that can set itself up at
 * either paper-scale or small-scale geometry.
 *
 * A setup bundles the assembled program, launch configuration,
 * initialised global memory, and the output regions the injector
 * compares for SDC classification.
 */

#ifndef FSP_APPS_APP_HH
#define FSP_APPS_APP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "faults/output_spec.hh"
#include "sim/launch.hh"
#include "sim/memory.hh"
#include "sim/program.hh"

namespace fsp::apps {

/**
 * Geometry preset.  Paper-scale matches the thread counts in the
 * paper's Table I and is intended for profiling-only experiments
 * (fault-space enumeration is a single fault-free run); small-scale
 * shrinks inputs so full injection campaigns finish on one CPU core.
 */
enum class Scale
{
    Small,
    Paper,
};

std::string scaleName(Scale scale);

/** Everything needed to run and inject one kernel. */
struct KernelSetup
{
    sim::Program program;
    sim::LaunchConfig launch;
    sim::GlobalMemory memory;
    std::vector<faults::OutputRegion> outputs;
};

/** A registered kernel. */
struct KernelSpec
{
    std::string suite;       ///< "Rodinia" or "Polybench"
    std::string application; ///< e.g. "HotSpot"
    std::string kernelName;  ///< e.g. "calculate_temp"
    std::string id;          ///< e.g. "K1"

    /** Build the kernel at the given scale with a given input seed. */
    std::function<KernelSetup(Scale, std::uint64_t)> setup;

    /** "HotSpot/K1" -- the lookup key used by benches and examples. */
    std::string
    fullName() const
    {
        return application + "/" + id;
    }
};

/** All registered kernels, in the paper's Table I order. */
const std::vector<KernelSpec> &allKernels();

/** Find a kernel by "App/Kx" full name; nullptr when unknown. */
const KernelSpec *findKernel(std::string_view full_name);

} // namespace fsp::apps

#endif // FSP_APPS_APP_HH
