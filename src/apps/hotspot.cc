/**
 * @file
 * Rodinia HotSpot (calculate_temp): thermal stencil over a power grid.
 * Each CTA stages its 2-D tile in shared memory and advances the
 * temperature two time steps (double-buffered in shared memory, two
 * barriers), writing the result to the output grid.
 *
 * Neighbour selection is heavily divergent -- tile-interior threads
 * read shared memory, tile-edge threads fall back to global loads, and
 * grid-edge threads clamp to the centre (adiabatic boundary) -- so
 * thread iCnt varies widely across the tile and across CTAs (corner /
 * edge / interior), reproducing the paper's 10 CTA groups and the
 * 77-183 iCnt range of Table IV.  No loops (Table VII).
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct HotspotGeometry
{
    unsigned gx, gy; ///< CTA grid
    unsigned bs;     ///< CTA side
};

HotspotGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {6, 6, 16}; // 36 CTAs x 256 threads = 9216
    return {2, 2, 8};
}

/**
 * Emit one neighbour fetch: tile-interior threads read the shared
 * buffer at @p sbase; tile-edge threads read global temp_in (or clamp
 * to the centre at the grid boundary).
 *
 * Register conventions (set up by the prologue):
 *   $r1=j  $r2=i  $r3=tj  $r4=ti  $r5=NC  $r6=NR
 *   $r8=&temp_in[i][j]  $r9=tile byte offset  $r12=row stride bytes
 *   $r10=centre value; results land in @p dst_reg; $r17/$r18 scratch.
 */
std::string
neighbourBlock(const std::string &tag, unsigned bs, unsigned sbase,
               char axis, int dir, unsigned dst_reg)
{
    std::string dst = "$r" + std::to_string(dst_reg);
    // axis 'y': up/down (ti, i, stride = row); axis 'x': left/right.
    std::string tile_reg = axis == 'y' ? "$r4" : "$r3";
    std::string grid_reg = axis == 'y' ? "$r2" : "$r1";
    std::string grid_dim = axis == 'y' ? "$r6" : "$r5";
    int shared_delta = (axis == 'y' ? static_cast<int>(bs) : 1) * 4 * dir;
    std::string gstride =
        axis == 'y' ? "$r12" : "0x00000004"; // global byte delta

    std::string edge_value =
        dir < 0 ? "0x00000000"
                : [&] {
                      // Far edge index = dim - 1, computed into $r18.
                      return std::string("$r18");
                  }();

    std::string s;
    if (dir > 0)
        s += "    sub.u32 $r18, " + grid_dim + ", 0x00000001;\n";
    s += "    set.eq.u32.u32 $p0|$o127, " + tile_reg + ", " +
         (dir < 0 ? std::string("0x00000000")
                  : std::to_string(bs - 1)) +
         ";\n";
    s += "    @$p0.eq bra " + tag + "_int;\n"; // taken when not tile edge
    s += "    set.eq.u32.u32 $p1|$o127, " + grid_reg + ", " + edge_value +
         ";\n";
    s += "    @$p1.eq bra " + tag + "_grid;\n"; // taken when not grid edge
    s += "    mov.f32 " + dst + ", $r10;\n";    // adiabatic clamp
    s += "    bra " + tag + "_done;\n";
    s += tag + "_grid:\n";
    if (dir < 0)
        s += "    sub.u32 $r17, $r8, " + gstride + ";\n";
    else
        s += "    add.u32 $r17, $r8, " + gstride + ";\n";
    s += "    ld.global.f32 " + dst + ", [$r17];\n";
    s += "    bra " + tag + "_done;\n";
    s += tag + "_int:\n";
    s += "    ld.shared.f32 " + dst + ", [$r9+" +
         std::to_string(static_cast<int>(sbase) + shared_delta) + "];\n";
    s += tag + "_done:\n";
    return s;
}

/** One stencil update step reading shared buffer @p sbase. */
std::string
stepBlock(const std::string &tag, unsigned bs, unsigned sbase,
          bool with_power)
{
    std::string s;
    s += "    ld.shared.f32 $r10, [$r9+" + std::to_string(sbase) +
         "];\n"; // centre
    s += neighbourBlock(tag + "_top", bs, sbase, 'y', -1, 13);
    s += neighbourBlock(tag + "_bot", bs, sbase, 'y', +1, 14);
    s += neighbourBlock(tag + "_lft", bs, sbase, 'x', -1, 15);
    s += neighbourBlock(tag + "_rgt", bs, sbase, 'x', +1, 16);
    s += R"(
    add.f32 $r20, $r13, $r14;
    add.f32 $r20, $r20, $r15;
    add.f32 $r20, $r20, $r16;
    mad.f32 $r20, $r10, -4.0, $r20; // Laplacian
    mad.f32 $r21, $r20, 0.2, $r10;  // centre + k * Laplacian
)";
    if (with_power)
        s += "    mad.f32 $r21, $r19, 0.0625, $r21;\n";
    return s;
}

std::string
kernelSource(unsigned bs)
{
    unsigned tile_bytes = 4 * bs * bs;
    // Params: [0]=temp_in, [4]=power, [8]=temp_out, [12]=NC, [16]=NR.
    // Shared: buffer0 at 0 (loaded tile), buffer1 at tile_bytes.
    std::string s;
    s += asmGlobalIdXY(1, 2); // $r1 = j, $r2 = i
    s += R"(
    cvt.u32.u16 $r3, %tid.x;       // tj
    cvt.u32.u16 $r4, %tid.y;       // ti
    ld.param.u32 $r5, [12];        // NC
    ld.param.u32 $r6, [16];        // NR
    mul.lo.u32 $r7, $r2, $r5;
    add.u32 $r7, $r7, $r1;
    shl.u32 $r7, $r7, 0x00000002;  // global byte offset
    ld.param.u32 $r8, [0];
    add.u32 $r8, $r8, $r7;         // &temp_in[i][j]
)";
    s += "    mul.lo.u32 $r9, $r4, " + std::to_string(bs) + ";\n";
    s += R"(
    add.u32 $r9, $r9, $r3;
    shl.u32 $r9, $r9, 0x00000002;  // tile byte offset
    shl.u32 $r12, $r5, 0x00000002; // global row stride bytes
    ld.global.f32 $r10, [$r8];
    st.shared.f32 [$r9], $r10;     // stage the tile
    ld.param.u32 $r17, [4];
    add.u32 $r17, $r17, $r7;
    ld.global.f32 $r19, [$r17];    // power[i][j]
    bar.sync 0;
)";
    s += stepBlock("hs1", bs, 0, true);
    s += "    st.shared.f32 [$r9+" + std::to_string(tile_bytes) +
         "], $r21;\n";
    s += "    bar.sync 0;\n";
    s += stepBlock("hs2", bs, tile_bytes, true);
    s += R"(
    ld.param.u32 $r22, [8];
    add.u32 $r22, $r22, $r7;
    st.global.f32 [$r22], $r21;    // temp_out[i][j]
    retp;
)";
    return s;
}

KernelSetup
setupHotspot(Scale scale, std::uint64_t seed)
{
    HotspotGeometry g = geometry(scale);
    unsigned nc = g.gx * g.bs;
    unsigned nr = g.gy * g.bs;

    KernelSetup setup;
    setup.program = ptx::assemble("calculate_temp", kernelSource(g.bs));

    setup.memory = sim::GlobalMemory(1u << 23);
    std::uint64_t temp_in = setup.memory.allocate(4ull * nr * nc);
    std::uint64_t power = setup.memory.allocate(4ull * nr * nc);
    std::uint64_t temp_out = setup.memory.allocate(4ull * nr * nc);
    uploadFloats(setup.memory, temp_in,
                 randomFloats(nr * nc, seed + 1, 320.0f, 340.0f));
    uploadFloats(setup.memory, power,
                 randomFloats(nr * nc, seed + 2, 0.0f, 1.0f));
    uploadFloats(setup.memory, temp_out,
                 std::vector<float>(nr * nc, 0.0f));

    setup.launch.grid = {g.gx, g.gy, 1};
    setup.launch.block = {g.bs, g.bs, 1};
    setup.launch.sharedBytes = 2 * 4 * g.bs * g.bs;
    setup.launch.params.addU32(static_cast<std::uint32_t>(temp_in));
    setup.launch.params.addU32(static_cast<std::uint32_t>(power));
    setup.launch.params.addU32(static_cast<std::uint32_t>(temp_out));
    setup.launch.params.addU32(nc);
    setup.launch.params.addU32(nr);

    setup.outputs.push_back({"temp_out", temp_out, 4ull * nr * nc,
                             faults::ElemType::F32, 0.0, nr});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeHotspotKernels()
{
    KernelSpec spec;
    spec.suite = "Rodinia";
    spec.application = "HotSpot";
    spec.kernelName = "calculate_temp";
    spec.id = "K1";
    spec.setup = setupHotspot;
    return {spec};
}

} // namespace fsp::apps
