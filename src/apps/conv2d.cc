/**
 * @file
 * Polybench 2DCONV (Convolution2D_kernel): one thread per pixel applies
 * a 3x3 stencil with fixed coefficients; boundary threads return early,
 * which produces the three thread iCnt classes the paper observes
 * (Table III: short row-boundary exit, column-boundary exit, and the
 * full interior path).  No loops (Table VII).
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct Conv2dGeometry
{
    unsigned ni; ///< rows
    unsigned nj; ///< cols
    unsigned block;
};

Conv2dGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {64, 128, 16}; // 8192 threads as in Table I
    return {16, 32, 8};
}

std::string
kernelSource()
{
    // Params: [0]=A, [4]=B, [8]=NI, [12]=NJ.
    // Polybench's 3x3 coefficients, row-major.
    static const char *kCoeffs[3][3] = {
        {"0.2", "-0.3", "0.4"},
        {"0.5", "0.6", "0.7"},
        {"-0.8", "-0.9", "0.1"},
    };

    std::string s;
    s += asmGlobalIdXY(1, 2); // $r1 = j, $r2 = i
    s += R"(
    ld.param.u32 $r3, [8];        // NI
    sub.u32 $r4, $r2, 0x00000001; // i-1 (wraps for i==0)
    sub.u32 $r5, $r3, 0x00000002; // NI-2
    set.ge.u32.u32 $p0|$o127, $r4, $r5;
    @$p0.ne retp;                 // row-boundary exit
    ld.param.u32 $r3, [12];       // NJ
    sub.u32 $r6, $r1, 0x00000001; // j-1
    sub.u32 $r5, $r3, 0x00000002; // NJ-2
    set.ge.u32.u32 $p0|$o127, $r6, $r5;
    @$p0.ne retp;                 // column-boundary exit
    ld.param.u32 $r7, [0];        // A
    mul.lo.u32 $r8, $r4, $r3;
    add.u32 $r8, $r8, $r6;
    shl.u32 $r8, $r8, 0x00000002;
    add.u32 $r7, $r7, $r8;        // &A[i-1][j-1]
    shl.u32 $r9, $r3, 0x00000002; // row stride bytes
    mov.f32 $r10, 0.0;            // acc
)";
    for (unsigned r = 0; r < 3; ++r) {
        for (unsigned c = 0; c < 3; ++c) {
            std::string off = std::to_string(4 * c);
            s += "    ld.global.f32 $r11, [$r7+" + off + "];\n";
            s += std::string("    mad.f32 $r10, $r11, ") + kCoeffs[r][c] +
                 ", $r10;\n";
        }
        if (r != 2)
            s += "    add.u32 $r7, $r7, $r9;\n";
    }
    s += R"(
    ld.param.u32 $r12, [4];       // B
    mul.lo.u32 $r13, $r2, $r3;
    add.u32 $r13, $r13, $r1;
    shl.u32 $r13, $r13, 0x00000002;
    add.u32 $r12, $r12, $r13;
    st.global.f32 [$r12], $r10;
    retp;
)";
    return s;
}

KernelSetup
setupConv2d(Scale scale, std::uint64_t seed)
{
    Conv2dGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("Convolution2D_kernel", kernelSource());

    setup.memory = sim::GlobalMemory(1u << 24);
    std::uint64_t a = setup.memory.allocate(4ull * g.ni * g.nj);
    std::uint64_t b = setup.memory.allocate(4ull * g.ni * g.nj);
    uploadFloats(setup.memory, a, randomFloats(g.ni * g.nj, seed + 1));
    uploadFloats(setup.memory, b,
                 std::vector<float>(g.ni * g.nj, 0.0f));

    setup.launch.grid = {g.nj / g.block, g.ni / g.block, 1};
    setup.launch.block = {g.block, g.block, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));
    setup.launch.params.addU32(static_cast<std::uint32_t>(b));
    setup.launch.params.addU32(g.ni);
    setup.launch.params.addU32(g.nj);

    setup.outputs.push_back({"B", b, 4ull * g.ni * g.nj,
                             faults::ElemType::F32, 0.0, g.ni});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeConv2dKernels()
{
    KernelSpec spec;
    spec.suite = "Polybench";
    spec.application = "2DCONV";
    spec.kernelName = "Convolution2D_kernel";
    spec.id = "K1";
    spec.setup = setupConv2d;
    return {spec};
}

} // namespace fsp::apps
