/**
 * @file
 * Polybench SYRK (symmetric rank-K update):
 * C = beta * C + alpha * A x A^T, one thread per output element with an
 * M-iteration loop reading two rows of A.
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct SyrkGeometry
{
    unsigned n; ///< C is n x n
    unsigned m; ///< A is n x m
    unsigned block;
};

SyrkGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {128, 128, 16}; // 16384 threads, 128 loop iterations
    return {16, 16, 8};
}

std::string
kernelSource()
{
    // Params: [0]=A, [4]=C, [8]=N, [12]=M, [16]=alpha, [20]=beta.
    std::string s;
    s += asmGlobalIdXY(1, 2); // $r1 = j, $r2 = i
    s += R"(
    ld.param.u32 $r3, [8];        // N
    ld.param.u32 $r4, [12];       // M
    ld.param.u32 $r5, [0];        // A
    mul.lo.u32 $r6, $r2, $r4;
    shl.u32 $r6, $r6, 0x00000002;
    add.u32 $r6, $r5, $r6;        // &A[i*M]
    mul.lo.u32 $r7, $r1, $r4;
    shl.u32 $r7, $r7, 0x00000002;
    add.u32 $r7, $r5, $r7;        // &A[j*M]
    mov.f32 $r8, 0.0;             // acc
    mov.u32 $r9, 0x00000000;      // k
syrk_loop:
    ld.global.f32 $r10, [$r6];
    ld.global.f32 $r11, [$r7];
    mad.f32 $r8, $r10, $r11, $r8;
    add.u32 $r6, $r6, 0x00000004;
    add.u32 $r7, $r7, 0x00000004;
    add.u32 $r9, $r9, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r9, $r4;
    @$p0.ne bra syrk_loop;
    ld.param.u32 $r12, [4];       // C
    mul.lo.u32 $r13, $r2, $r3;
    add.u32 $r13, $r13, $r1;
    shl.u32 $r13, $r13, 0x00000002;
    add.u32 $r12, $r12, $r13;
    ld.global.f32 $r14, [$r12];
    ld.param.f32 $r15, [16];      // alpha
    ld.param.f32 $r16, [20];      // beta
    mul.f32 $r14, $r14, $r16;
    mad.f32 $r14, $r8, $r15, $r14;
    st.global.f32 [$r12], $r14;
    retp;
)";
    return s;
}

KernelSetup
setupSyrk(Scale scale, std::uint64_t seed)
{
    SyrkGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("syrk_kernel", kernelSource());

    setup.memory = sim::GlobalMemory(1u << 24);
    std::uint64_t a = setup.memory.allocate(4ull * g.n * g.m);
    std::uint64_t c = setup.memory.allocate(4ull * g.n * g.n);
    uploadFloats(setup.memory, a, randomFloats(g.n * g.m, seed + 1));
    uploadFloats(setup.memory, c, randomFloats(g.n * g.n, seed + 2));

    setup.launch.grid = {g.n / g.block, g.n / g.block, 1};
    setup.launch.block = {g.block, g.block, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));
    setup.launch.params.addU32(static_cast<std::uint32_t>(c));
    setup.launch.params.addU32(g.n);
    setup.launch.params.addU32(g.m);
    setup.launch.params.addF32(1.25f); // alpha
    setup.launch.params.addF32(0.5f);  // beta

    setup.outputs.push_back({"C", c, 4ull * g.n * g.n,
                             faults::ElemType::F32, 0.0, g.n});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeSyrkKernels()
{
    KernelSpec spec;
    spec.suite = "Polybench";
    spec.application = "SYRK";
    spec.kernelName = "syrk_kernel";
    spec.id = "K1";
    spec.setup = setupSyrk;
    return {spec};
}

} // namespace fsp::apps
