/**
 * @file
 * Rodinia Gaussian Elimination: Fan1 computes the multiplier column for
 * elimination step t; Fan2 updates the trailing submatrix (and the RHS
 * vector for its first column).  The paper evaluates the kernels of two
 * dynamic invocations: step t=0 (K1/K2) and step t=62 (K125/K126 --
 * each elimination step launches the Fan1/Fan2 pair, so invocation
 * indices 125/126 correspond to t=62).  Late steps have very few active
 * threads, giving the distinct thread populations in Table I.
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct GaussianGeometry
{
    unsigned size;       ///< matrix dimension
    unsigned fan1Block;  ///< Fan1 CTA width (1-D)
    unsigned fan1Grid;
    unsigned fan2Block;  ///< Fan2 CTA side (2-D)
    unsigned fan2Grid;   ///< Fan2 grid side
};

GaussianGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper) {
        // 512 Fan1 threads and 4096 Fan2 threads as in Table I.
        return {64, 256, 2, 16, 4};
    }
    return {16, 32, 1, 8, 2};
}

std::string
fan1Source()
{
    // Params: [0]=m, [4]=a, [8]=size, [12]=t.
    std::string s;
    s += asmGlobalIdX(1); // $r1 = tid
    s += R"(
    ld.param.u32 $r2, [8];        // size
    ld.param.u32 $r3, [12];       // t
    sub.u32 $r4, $r2, 0x00000001;
    sub.u32 $r4, $r4, $r3;        // size-1-t
    set.ge.u32.u32 $p0|$o127, $r1, $r4;
    @$p0.ne retp;                 // inactive threads
    add.u32 $r5, $r1, $r3;
    add.u32 $r5, $r5, 0x00000001; // row = tid + t + 1
    mul.lo.u32 $r6, $r5, $r2;
    add.u32 $r6, $r6, $r3;
    shl.u32 $r6, $r6, 0x00000002; // byte offset of a[row][t]
    ld.param.u32 $r7, [4];        // a
    add.u32 $r8, $r7, $r6;
    ld.global.f32 $r9, [$r8];     // a[row][t]
    mul.lo.u32 $r10, $r3, $r2;
    add.u32 $r10, $r10, $r3;
    shl.u32 $r10, $r10, 0x00000002;
    add.u32 $r11, $r7, $r10;
    ld.global.f32 $r12, [$r11];   // a[t][t]
    div.f32 $r13, $r9, $r12;
    ld.param.u32 $r14, [0];       // m
    add.u32 $r14, $r14, $r6;
    st.global.f32 [$r14], $r13;   // m[row][t]
    retp;
)";
    return s;
}

std::string
fan2Source()
{
    // Params: [0]=m, [4]=a, [8]=b, [12]=size, [16]=t.
    std::string s;
    s += asmGlobalIdXY(1, 2); // $r1 = xid (row offset), $r2 = yid (col)
    s += R"(
    ld.param.u32 $r3, [12];       // size
    ld.param.u32 $r4, [16];       // t
    sub.u32 $r5, $r3, 0x00000001;
    sub.u32 $r5, $r5, $r4;        // size-1-t
    set.ge.u32.u32 $p0|$o127, $r1, $r5;
    @$p0.ne retp;                 // inactive rows
    sub.u32 $r6, $r3, $r4;        // size-t
    set.ge.u32.u32 $p0|$o127, $r2, $r6;
    @$p0.ne retp;                 // inactive cols
    add.u32 $r7, $r1, $r4;
    add.u32 $r7, $r7, 0x00000001; // row = xid + t + 1
    add.u32 $r8, $r2, $r4;        // col = yid + t
    mul.lo.u32 $r9, $r7, $r3;
    add.u32 $r10, $r9, $r4;
    shl.u32 $r10, $r10, 0x00000002;
    ld.param.u32 $r11, [0];       // m
    add.u32 $r11, $r11, $r10;
    ld.global.f32 $r12, [$r11];   // m[row][t]
    ld.param.u32 $r13, [4];       // a
    mul.lo.u32 $r14, $r4, $r3;
    add.u32 $r14, $r14, $r8;
    shl.u32 $r14, $r14, 0x00000002;
    add.u32 $r14, $r13, $r14;
    ld.global.f32 $r15, [$r14];   // a[t][col]
    add.u32 $r16, $r9, $r8;
    shl.u32 $r16, $r16, 0x00000002;
    add.u32 $r16, $r13, $r16;
    ld.global.f32 $r17, [$r16];   // a[row][col]
    mul.f32 $r18, $r12, $r15;
    sub.f32 $r17, $r17, $r18;
    st.global.f32 [$r16], $r17;
    set.eq.u32.u32 $p1|$o127, $r2, 0x00000000;
    @$p1.eq retp;                 // only yid==0 updates b
    ld.param.u32 $r19, [8];       // b
    shl.u32 $r20, $r4, 0x00000002;
    add.u32 $r21, $r19, $r20;
    ld.global.f32 $r22, [$r21];   // b[t]
    shl.u32 $r23, $r7, 0x00000002;
    add.u32 $r24, $r19, $r23;
    ld.global.f32 $r25, [$r24];   // b[row]
    mul.f32 $r26, $r12, $r22;
    sub.f32 $r25, $r25, $r26;
    st.global.f32 [$r24], $r25;
    retp;
)";
    return s;
}

/** Initialise a diagonally dominant system so elimination is stable. */
void
initSystem(sim::GlobalMemory &memory, std::uint64_t m, std::uint64_t a,
           std::uint64_t b, unsigned size, std::uint64_t seed)
{
    auto mat = randomFloats(size * size, seed + 1, 0.1f, 1.0f);
    for (unsigned i = 0; i < size; ++i)
        mat[i * size + i] += static_cast<float>(size);
    uploadFloats(memory, a, mat);
    uploadFloats(memory, b, randomFloats(size, seed + 2, 0.5f, 2.0f));
    uploadFloats(memory, m, std::vector<float>(size * size, 0.0f));
}

KernelSetup
setupFan1(Scale scale, std::uint64_t seed, unsigned step)
{
    GaussianGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("Fan1", fan1Source());

    setup.memory = sim::GlobalMemory(1u << 22);
    std::uint64_t m = setup.memory.allocate(4ull * g.size * g.size);
    std::uint64_t a = setup.memory.allocate(4ull * g.size * g.size);
    std::uint64_t b = setup.memory.allocate(4ull * g.size);
    initSystem(setup.memory, m, a, b, g.size, seed);

    setup.launch.grid = {g.fan1Grid, 1, 1};
    setup.launch.block = {g.fan1Block, 1, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(m));
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));
    setup.launch.params.addU32(g.size);
    setup.launch.params.addU32(step);

    setup.outputs.push_back({"m", m, 4ull * g.size * g.size,
                             faults::ElemType::F32, 0.0, g.size});
    return setup;
}

KernelSetup
setupFan2(Scale scale, std::uint64_t seed, unsigned step)
{
    GaussianGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("Fan2", fan2Source());

    setup.memory = sim::GlobalMemory(1u << 22);
    std::uint64_t m = setup.memory.allocate(4ull * g.size * g.size);
    std::uint64_t a = setup.memory.allocate(4ull * g.size * g.size);
    std::uint64_t b = setup.memory.allocate(4ull * g.size);
    initSystem(setup.memory, m, a, b, g.size, seed);
    // Fan2 consumes the multiplier column Fan1 produced for this step.
    for (unsigned r = step + 1; r < g.size; ++r) {
        float num = setup.memory.peekF32(a + 4ull * (r * g.size + step));
        float den =
            setup.memory.peekF32(a + 4ull * (step * g.size + step));
        setup.memory.pokeF32(m + 4ull * (r * g.size + step), num / den);
    }

    setup.launch.grid = {g.fan2Grid, g.fan2Grid, 1};
    setup.launch.block = {g.fan2Block, g.fan2Block, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(m));
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));
    setup.launch.params.addU32(static_cast<std::uint32_t>(b));
    setup.launch.params.addU32(g.size);
    setup.launch.params.addU32(step);

    setup.outputs.push_back({"a", a, 4ull * g.size * g.size,
                             faults::ElemType::F32, 0.0, g.size});
    setup.outputs.push_back({"b", b, 4ull * g.size, faults::ElemType::F32,
                             0.0});
    return setup;
}

/** Elimination step for a given invocation index (K1 -> 0, K125 -> 62). */
unsigned
stepForInvocation(Scale scale, unsigned paper_step)
{
    // The small geometry has a 16x16 matrix; scale the late step to
    // keep the "few active threads" property.
    return scale == Scale::Paper ? paper_step : (paper_step == 0 ? 0 : 6);
}

} // namespace

std::vector<KernelSpec>
makeGaussianKernels()
{
    std::vector<KernelSpec> specs;

    KernelSpec fan1_k1{"Rodinia", "Gaussian", "Fan1", "K1",
                       [](Scale scale, std::uint64_t seed) {
                           return setupFan1(scale, seed,
                                            stepForInvocation(scale, 0));
                       }};
    KernelSpec fan2_k2{"Rodinia", "Gaussian", "Fan2", "K2",
                       [](Scale scale, std::uint64_t seed) {
                           return setupFan2(scale, seed,
                                            stepForInvocation(scale, 0));
                       }};
    KernelSpec fan1_k125{"Rodinia", "Gaussian", "Fan1", "K125",
                         [](Scale scale, std::uint64_t seed) {
                             return setupFan1(
                                 scale, seed, stepForInvocation(scale, 62));
                         }};
    KernelSpec fan2_k126{"Rodinia", "Gaussian", "Fan2", "K126",
                         [](Scale scale, std::uint64_t seed) {
                             return setupFan2(
                                 scale, seed, stepForInvocation(scale, 62));
                         }};

    specs.push_back(std::move(fan1_k1));
    specs.push_back(std::move(fan2_k2));
    specs.push_back(std::move(fan1_k125));
    specs.push_back(std::move(fan2_k126));
    return specs;
}

} // namespace fsp::apps
