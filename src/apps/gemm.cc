/**
 * @file
 * Polybench GEMM: C = alpha * A x B + beta * C, one thread per output
 * element, K-loop accumulation.  Paper geometry: 16384 threads (128x128
 * output, 16x16 CTAs), 128 loop iterations per thread (Table VII).
 */

#include <cstdlib>
#include <string>

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"
#include "util/logging.hh"

namespace fsp::apps {

namespace {

struct GemmGeometry
{
    unsigned ni, nj, nk;
    unsigned block;
};

GemmGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {128, 128, 128, 16};
    return {16, 16, 16, 8};
}

/**
 * The edit-scenario hook behind incremental-campaign tests and the CI
 * cache smoke job.  FSP_GEMM_VARIANT selects a semantically equivalent
 * rewrite of the kernel source (golden outputs are identical for all
 * of them), each exercising a different section-cache behaviour:
 *
 *  - "" / unset / "base":  the reference source below.
 *  - "dead-prologue":      two guarded-off instructions inserted at
 *    the top.  $p1 is never written (CC 0 fails an .eq guard), so
 *    they issue guard-failed: no section content or write offset
 *    moves, and a warm cache should hit on (nearly) every site.
 *  - "strength-reduce":    the B-column byte offset computed with
 *    mul.lo instead of shl.  Same value into the same register, so
 *    downstream sections stay warm via prefixStateHash; only the
 *    edited (first) section re-injects.
 *  - "reorder-params":     the NJ/NK parameter loads swapped.  A
 *    no-op semantically, but the (dest, value) fold is order
 *    sensitive, so the cache conservatively misses everywhere.
 */
const char *
gemmVariant()
{
    const char *variant = std::getenv("FSP_GEMM_VARIANT");
    return variant != nullptr ? variant : "";
}

std::string
kernelSource()
{
    const std::string variant = gemmVariant();
    if (!variant.empty() && variant != "base" &&
        variant != "dead-prologue" && variant != "strength-reduce" &&
        variant != "reorder-params") {
        fatal("unknown FSP_GEMM_VARIANT '", variant, "'");
    }

    // Params: [0]=A, [4]=B, [8]=C, [12]=NJ, [16]=NK, [20]=alpha,
    // [24]=beta.
    std::string s;
    s += asmGlobalIdXY(1, 2); // $r1 = j (col), $r2 = i (row)
    if (variant == "dead-prologue") {
        // $p1 is never written, so its CC stays 0 (zero flag clear)
        // and the .eq guards fail: both issues trace as guard-failed.
        s += R"(
    @$p1.eq add.u32 $r20, $r20, 0x00000001;
    @$p1.eq mul.lo.u32 $r21, $r20, $r20;
)";
    }
    if (variant == "reorder-params") {
        s += R"(
    ld.param.u32 $r4, [16];       // NK (reordered before NJ)
    ld.param.u32 $r3, [12];       // NJ
)";
    } else {
        s += R"(
    ld.param.u32 $r3, [12];       // NJ
    ld.param.u32 $r4, [16];       // NK
)";
    }
    s += R"(
    ld.param.u32 $r5, [0];        // A
    mul.lo.u32 $r6, $r2, $r4;
    shl.u32 $r6, $r6, 0x00000002;
    add.u32 $r5, $r5, $r6;        // &A[i*NK]
    ld.param.u32 $r7, [4];        // B
)";
    s += variant == "strength-reduce"
             ? "    mul.lo.u32 $r8, $r1, 0x00000004;\n"
             : "    shl.u32 $r8, $r1, 0x00000002;\n";
    s += R"(
    add.u32 $r7, $r7, $r8;        // &B[j]
    shl.u32 $r9, $r3, 0x00000002; // B row stride in bytes
    mov.f32 $r10, 0.0;            // acc
    mov.u32 $r11, 0x00000000;     // k
gemm_loop:
    ld.global.f32 $r12, [$r5];
    ld.global.f32 $r13, [$r7];
    mad.f32 $r10, $r12, $r13, $r10;
    add.u32 $r5, $r5, 0x00000004;
    add.u32 $r7, $r7, $r9;
    add.u32 $r11, $r11, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r11, $r4;
    @$p0.ne bra gemm_loop;
    ld.param.u32 $r14, [8];       // C
    mul.lo.u32 $r15, $r2, $r3;
    add.u32 $r15, $r15, $r1;
    shl.u32 $r15, $r15, 0x00000002;
    add.u32 $r14, $r14, $r15;     // &C[i*NJ+j]
    ld.global.f32 $r16, [$r14];
    ld.param.f32 $r17, [20];      // alpha
    ld.param.f32 $r18, [24];      // beta
    mul.f32 $r16, $r16, $r18;
    mad.f32 $r16, $r10, $r17, $r16;
    st.global.f32 [$r14], $r16;
    retp;
)";
    return s;
}

KernelSetup
setupGemm(Scale scale, std::uint64_t seed)
{
    GemmGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("gemm_kernel", kernelSource());

    setup.memory = sim::GlobalMemory(1u << 24);
    std::uint64_t a = setup.memory.allocate(4ull * g.ni * g.nk);
    std::uint64_t b = setup.memory.allocate(4ull * g.nk * g.nj);
    std::uint64_t c = setup.memory.allocate(4ull * g.ni * g.nj);
    uploadFloats(setup.memory, a, randomFloats(g.ni * g.nk, seed + 1));
    uploadFloats(setup.memory, b, randomFloats(g.nk * g.nj, seed + 2));
    uploadFloats(setup.memory, c, randomFloats(g.ni * g.nj, seed + 3));

    setup.launch.grid = {g.nj / g.block, g.ni / g.block, 1};
    setup.launch.block = {g.block, g.block, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));
    setup.launch.params.addU32(static_cast<std::uint32_t>(b));
    setup.launch.params.addU32(static_cast<std::uint32_t>(c));
    setup.launch.params.addU32(g.nj);
    setup.launch.params.addU32(g.nk);
    setup.launch.params.addF32(1.5f);  // alpha
    setup.launch.params.addF32(0.75f); // beta

    setup.outputs.push_back({"C", c, 4ull * g.ni * g.nj,
                             faults::ElemType::F32, 0.0, g.ni});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeGemmKernels()
{
    KernelSpec spec;
    spec.suite = "Polybench";
    spec.application = "GEMM";
    spec.kernelName = "gemm_kernel";
    spec.id = "K1";
    spec.setup = setupGemm;
    return {spec};
}

} // namespace fsp::apps
