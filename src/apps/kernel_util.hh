/**
 * @file
 * Shared helpers for workload construction: assembly-text building
 * blocks (global thread-index computation), seeded input generation,
 * and the per-app declaration hooks the registry collects.
 */

#ifndef FSP_APPS_KERNEL_UTIL_HH
#define FSP_APPS_KERNEL_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "util/prng.hh"

namespace fsp::apps {

/**
 * Assembly snippet computing the flat 1-D global thread index into
 * register $r<gid> (x dimension only), clobbering $r<gid+1>.
 */
std::string asmGlobalIdX(unsigned gid_reg);

/**
 * Assembly snippet computing 2-D coordinates: column (x) into
 * $r<col_reg> and row (y) into $r<row_reg>, clobbering one register
 * after each.
 */
std::string asmGlobalIdXY(unsigned col_reg, unsigned row_reg);

/** Uniform floats in [lo, hi), seeded. */
std::vector<float> randomFloats(std::size_t count, std::uint64_t seed,
                                float lo = 0.0f, float hi = 1.0f);

/** Copy a float vector into device memory at @p addr. */
void uploadFloats(sim::GlobalMemory &memory, std::uint64_t addr,
                  const std::vector<float> &values);

/** Copy 32-bit integers into device memory at @p addr. */
void uploadU32(sim::GlobalMemory &memory, std::uint64_t addr,
               const std::vector<std::uint32_t> &values);

/** Read a float region back from device memory. */
std::vector<float> downloadFloats(const sim::GlobalMemory &memory,
                                  std::uint64_t addr, std::size_t count);

/** @{ Registration hooks, one per workload translation unit. */
std::vector<KernelSpec> makeConv2dKernels();
std::vector<KernelSpec> makeMvtKernels();
std::vector<KernelSpec> makeMm2Kernels();
std::vector<KernelSpec> makeGemmKernels();
std::vector<KernelSpec> makeSyrkKernels();
std::vector<KernelSpec> makeHotspotKernels();
std::vector<KernelSpec> makeKmeansKernels();
std::vector<KernelSpec> makeGaussianKernels();
std::vector<KernelSpec> makePathfinderKernels();
std::vector<KernelSpec> makeLudKernels();
std::vector<KernelSpec> makeNnKernels();
/** @} */

} // namespace fsp::apps

#endif // FSP_APPS_KERNEL_UTIL_HH
