/**
 * @file
 * Shared workload helpers.
 */

#include "apps/kernel_util.hh"

#include <string>

namespace fsp::apps {

std::string
scaleName(Scale scale)
{
    return scale == Scale::Paper ? "paper" : "small";
}

std::string
asmGlobalIdX(unsigned gid_reg)
{
    std::string g = "$r" + std::to_string(gid_reg);
    std::string t = "$r" + std::to_string(gid_reg + 1);
    std::string out;
    out += "cvt.u32.u16 " + g + ", %ctaid.x;\n";
    out += "cvt.u32.u16 " + t + ", %ntid.x;\n";
    out += "mul.lo.u32 " + g + ", " + g + ", " + t + ";\n";
    out += "cvt.u32.u16 " + t + ", %tid.x;\n";
    out += "add.u32 " + g + ", " + g + ", " + t + ";\n";
    return out;
}

std::string
asmGlobalIdXY(unsigned col_reg, unsigned row_reg)
{
    std::string c = "$r" + std::to_string(col_reg);
    std::string ct = "$r" + std::to_string(col_reg + 1);
    std::string r = "$r" + std::to_string(row_reg);
    std::string rt = "$r" + std::to_string(row_reg + 1);
    std::string out;
    out += "cvt.u32.u16 " + c + ", %ctaid.x;\n";
    out += "cvt.u32.u16 " + ct + ", %ntid.x;\n";
    out += "mul.lo.u32 " + c + ", " + c + ", " + ct + ";\n";
    out += "cvt.u32.u16 " + ct + ", %tid.x;\n";
    out += "add.u32 " + c + ", " + c + ", " + ct + ";\n";
    out += "cvt.u32.u16 " + r + ", %ctaid.y;\n";
    out += "cvt.u32.u16 " + rt + ", %ntid.y;\n";
    out += "mul.lo.u32 " + r + ", " + r + ", " + rt + ";\n";
    out += "cvt.u32.u16 " + rt + ", %tid.y;\n";
    out += "add.u32 " + r + ", " + r + ", " + rt + ";\n";
    return out;
}

std::vector<float>
randomFloats(std::size_t count, std::uint64_t seed, float lo, float hi)
{
    Prng prng(seed);
    std::vector<float> values(count);
    for (auto &v : values)
        v = static_cast<float>(prng.uniform(lo, hi));
    return values;
}

void
uploadFloats(sim::GlobalMemory &memory, std::uint64_t addr,
             const std::vector<float> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        memory.pokeF32(addr + 4 * i, values[i]);
}

void
uploadU32(sim::GlobalMemory &memory, std::uint64_t addr,
          const std::vector<std::uint32_t> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        memory.pokeU32(addr + 4 * i, values[i]);
}

std::vector<float>
downloadFloats(const sim::GlobalMemory &memory, std::uint64_t addr,
               std::size_t count)
{
    std::vector<float> values(count);
    for (std::size_t i = 0; i < count; ++i)
        values[i] = memory.peekF32(addr + 4 * i);
    return values;
}

} // namespace fsp::apps
