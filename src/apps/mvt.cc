/**
 * @file
 * Polybench MVT (mvt_kernel1): x1 = x1 + A * y1, one thread per row,
 * N-iteration dot-product loop.  The paper's longest loop (512
 * iterations, 99.71% of dynamic instructions in the loop, Table VII)
 * and a single thread group (all threads uniform).
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct MvtGeometry
{
    unsigned n;
    unsigned block;
};

MvtGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {512, 256};
    return {64, 32};
}

std::string
kernelSource()
{
    // Params: [0]=A, [4]=y1, [8]=x1, [12]=N.
    std::string s;
    s += asmGlobalIdX(1); // $r1 = i
    s += R"(
    ld.param.u32 $r2, [12];       // N
    ld.param.u32 $r3, [0];        // A
    mul.lo.u32 $r4, $r1, $r2;
    shl.u32 $r4, $r4, 0x00000002;
    add.u32 $r3, $r3, $r4;        // &A[i*N]
    ld.param.u32 $r5, [4];        // y1 ptr
    mov.f32 $r6, 0.0;             // acc
    mov.u32 $r7, 0x00000000;      // j
mvt_loop:
    ld.global.f32 $r8, [$r3];
    ld.global.f32 $r9, [$r5];
    mad.f32 $r6, $r8, $r9, $r6;
    add.u32 $r3, $r3, 0x00000004;
    add.u32 $r5, $r5, 0x00000004;
    add.u32 $r7, $r7, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r7, $r2;
    @$p0.ne bra mvt_loop;
    ld.param.u32 $r10, [8];       // x1
    shl.u32 $r11, $r1, 0x00000002;
    add.u32 $r10, $r10, $r11;
    ld.global.f32 $r12, [$r10];
    add.f32 $r12, $r12, $r6;
    st.global.f32 [$r10], $r12;
    retp;
)";
    return s;
}

KernelSetup
setupMvt(Scale scale, std::uint64_t seed)
{
    MvtGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("mvt_kernel1", kernelSource());

    setup.memory = sim::GlobalMemory(1u << 24);
    std::uint64_t a = setup.memory.allocate(4ull * g.n * g.n);
    std::uint64_t y1 = setup.memory.allocate(4ull * g.n);
    std::uint64_t x1 = setup.memory.allocate(4ull * g.n);
    uploadFloats(setup.memory, a, randomFloats(g.n * g.n, seed + 1));
    uploadFloats(setup.memory, y1, randomFloats(g.n, seed + 2));
    uploadFloats(setup.memory, x1, randomFloats(g.n, seed + 3));

    setup.launch.grid = {g.n / g.block, 1, 1};
    setup.launch.block = {g.block, 1, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(a));
    setup.launch.params.addU32(static_cast<std::uint32_t>(y1));
    setup.launch.params.addU32(static_cast<std::uint32_t>(x1));
    setup.launch.params.addU32(g.n);

    setup.outputs.push_back({"x1", x1, 4ull * g.n, faults::ElemType::F32,
                             0.0});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeMvtKernels()
{
    KernelSpec spec;
    spec.suite = "Polybench";
    spec.application = "MVT";
    spec.kernelName = "mvt_kernel1";
    spec.id = "K1";
    spec.setup = setupMvt;
    return {spec};
}

} // namespace fsp::apps
