/**
 * @file
 * Rodinia NN (nearest neighbor, "euclid" kernel): each thread computes
 * the Euclidean distance of one (lat, lng) record to a target point.
 * Loop-free (paper Table VII); tail threads past the record count exit
 * early.
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct NnGeometry
{
    unsigned threads;
    unsigned records;
    unsigned block;
};

NnGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {43008, 42764, 256}; // 168 CTAs as in Table VII
    return {512, 500, 64};
}

std::string
kernelSource()
{
    // Params: [0]=locations (lat,lng pairs), [4]=distances,
    // [8]=nrecords, [12]=target lat, [16]=target lng.
    std::string s;
    s += asmGlobalIdX(1); // $r1 = gid
    s += R"(
    ld.param.u32 $r2, [8];        // nrecords
    set.ge.u32.u32 $p0|$o127, $r1, $r2;
    @$p0.ne retp;                 // tail exit
    ld.param.u32 $r3, [0];        // locations
    shl.u32 $r4, $r1, 0x00000003; // gid * 8 bytes
    add.u32 $r3, $r3, $r4;
    ld.global.f32 $r5, [$r3];     // lat
    ld.global.f32 $r6, [$r3+4];   // lng
    ld.param.f32 $r7, [12];       // target lat
    ld.param.f32 $r8, [16];       // target lng
    sub.f32 $r9, $r5, $r7;
    sub.f32 $r10, $r6, $r8;
    mul.f32 $r9, $r9, $r9;
    mad.f32 $r9, $r10, $r10, $r9;
    sqrt.f32 $r9, $r9;
    ld.param.u32 $r11, [4];       // distances
    shl.u32 $r12, $r1, 0x00000002;
    add.u32 $r11, $r11, $r12;
    st.global.f32 [$r11], $r9;
    retp;
)";
    return s;
}

KernelSetup
setupNn(Scale scale, std::uint64_t seed)
{
    NnGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("euclid", kernelSource());

    setup.memory = sim::GlobalMemory(1u << 24);
    std::uint64_t loc = setup.memory.allocate(8ull * g.records);
    std::uint64_t dist = setup.memory.allocate(4ull * g.records);
    uploadFloats(setup.memory, loc,
                 randomFloats(2 * g.records, seed + 1, 0.0f, 90.0f));
    uploadFloats(setup.memory, dist,
                 std::vector<float>(g.records, 0.0f));

    setup.launch.grid = {g.threads / g.block, 1, 1};
    setup.launch.block = {g.block, 1, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(loc));
    setup.launch.params.addU32(static_cast<std::uint32_t>(dist));
    setup.launch.params.addU32(g.records);
    setup.launch.params.addF32(30.0f);
    setup.launch.params.addF32(60.0f);

    setup.outputs.push_back({"distances", dist, 4ull * g.records,
                             faults::ElemType::F32, 0.0});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeNnKernels()
{
    KernelSpec spec;
    spec.suite = "Rodinia";
    spec.application = "NN";
    spec.kernelName = "euclid";
    spec.id = "K1";
    spec.setup = setupNn;
    return {spec};
}

} // namespace fsp::apps
