/**
 * @file
 * Rodinia PathFinder (dynproc_kernel): dynamic programming over a 2-D
 * grid.  Each CTA owns a strip of columns held in shared memory; every
 * iteration each thread adds the minimum of its three upper neighbours
 * (clamped at the strip edges) to its wall cost, with two barriers per
 * iteration for the double-buffer exchange.
 *
 * Edge threads of a strip (tid 0 and tid BS-1) set up clamped
 * neighbour offsets through a short path, while interior threads run a
 * longer offset-derivation block -- reproducing the paper's Fig. 5
 * structure of two representative threads that share a long common
 * prefix and suffix and differ in a small middle block.
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct PathfinderGeometry
{
    unsigned cols;
    unsigned rows; ///< iterations = rows - 1
    unsigned block;
};

PathfinderGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {1280, 21, 256}; // 5 CTAs, 20 loop iterations
    return {128, 7, 64};        // 2 CTAs, 6 iterations
}

std::string
kernelSource(unsigned bs)
{
    // Params: [0]=wall (u32 rows x cols), [4]=src row, [8]=result,
    // [12]=cols, [16]=iterations.
    // Shared layout: prev[bs] at 0, cur[bs] at 4*bs, and a +inf
    // sentinel word at 8*bs that strip-edge threads use in place of
    // their missing neighbour (min() then ignores it, matching the
    // Rodinia semantics of only considering existing neighbours).
    std::string cur_base = std::to_string(4 * bs);
    std::string sentinel = std::to_string(8 * bs);
    std::string s;
    s += asmGlobalIdX(1); // $r1 = gid
    s += R"(
    cvt.u32.u16 $r3, %tid.x;       // tid
    shl.u32 $r4, $r3, 0x00000002;  // sprev = tid*4
    add.u32 $r5, $r4, )" + cur_base + R"(; // scur
    ld.param.u32 $r6, [12];        // cols
    ld.param.u32 $r7, [4];         // src
    shl.u32 $r8, $r1, 0x00000002;  // gid*4
    add.u32 $r7, $r7, $r8;
    ld.global.u32 $r9, [$r7];
    st.shared.u32 [$r4], $r9;      // prev[tid] = src[gid]
    mov.u32 $r9, 0xffffffff;
    st.shared.u32 [)" + sentinel + R"(], $r9; // +inf sentinel
    bar.sync 0;
    // Left neighbour offset: the sentinel for tid==0, else derived.
    set.eq.u32.u32 $p0|$o127, $r3, 0x00000000;
    @$p0.eq bra pf_left_interior;
    mov.u32 $r10, )" + sentinel + R"(; // no left neighbour
    bra pf_left_done;
pf_left_interior:
    // Interior path also pre-derives the wall row stride and cursor
    // used by every loop iteration (hoisted setup block).
    sub.u32 $r10, $r4, 0x00000004;
pf_left_done:
    // Right neighbour offset: the sentinel for tid==bs-1.
    set.eq.u32.u32 $p0|$o127, $r3, )" +
         std::to_string(bs - 1) + R"(;
    @$p0.eq bra pf_right_interior;
    mov.u32 $r11, )" + sentinel + R"(; // no right neighbour
    bra pf_right_done;
pf_right_interior:
    add.u32 $r11, $r4, 0x00000004;
    // Hoisted wall cursor setup (interior threads derive it with the
    // full addressing sequence; edge threads use the short fallback
    // after the join).
    shl.u32 $r12, $r6, 0x00000002; // row stride bytes
    ld.param.u32 $r13, [0];        // wall
    add.u32 $r13, $r13, $r12;      // skip row 0
    add.u32 $r13, $r13, $r8;       // + gid*4
    mov.u32 $r14, 0x00000001;      // cursor-valid marker
    bra pf_setup_done;
pf_right_done:
    // Edge-thread fallback setup (shorter block).
    shl.u32 $r12, $r6, 0x00000002;
    ld.param.u32 $r13, [0];
    add.u32 $r13, $r13, $r12;
    add.u32 $r13, $r13, $r8;
pf_setup_done:
    ld.param.u32 $r15, [16];       // iterations
    mov.u32 $r16, 0x00000000;      // it
pf_loop:
    ld.shared.u32 $r17, [$r4];     // centre
    ld.shared.u32 $r18, [$r10];    // left
    ld.shared.u32 $r19, [$r11];    // right
    min.u32 $r20, $r18, $r19;
    min.u32 $r20, $r20, $r17;
    ld.global.u32 $r21, [$r13];    // wall[(it+1)*cols+gid]
    add.u32 $r20, $r20, $r21;
    st.shared.u32 [$r5], $r20;     // cur[tid]
    bar.sync 0;
    ld.shared.u32 $r22, [$r5];
    st.shared.u32 [$r4], $r22;     // prev[tid] = cur[tid]
    bar.sync 0;
    add.u32 $r13, $r13, $r12;      // advance wall row
    add.u32 $r16, $r16, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r16, $r15;
    @$p0.ne bra pf_loop;
    ld.param.u32 $r23, [8];        // result
    add.u32 $r23, $r23, $r8;
    ld.shared.u32 $r24, [$r4];
    st.global.u32 [$r23], $r24;
    retp;
)";
    return s;
}

KernelSetup
setupPathfinder(Scale scale, std::uint64_t seed)
{
    PathfinderGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("dynproc_kernel", kernelSource(g.block));

    setup.memory = sim::GlobalMemory(1u << 23);
    std::uint64_t wall = setup.memory.allocate(4ull * g.rows * g.cols);
    std::uint64_t src = setup.memory.allocate(4ull * g.cols);
    std::uint64_t result = setup.memory.allocate(4ull * g.cols);

    Prng prng(seed);
    std::vector<std::uint32_t> wall_data(g.rows * g.cols);
    for (auto &v : wall_data)
        v = static_cast<std::uint32_t>(prng.below(10));
    uploadU32(setup.memory, wall, wall_data);
    std::vector<std::uint32_t> src_data(wall_data.begin(),
                                        wall_data.begin() + g.cols);
    uploadU32(setup.memory, src, src_data);
    uploadU32(setup.memory, result,
              std::vector<std::uint32_t>(g.cols, 0));

    setup.launch.grid = {g.cols / g.block, 1, 1};
    setup.launch.block = {g.block, 1, 1};
    setup.launch.sharedBytes = (2 * g.block + 2) * 4;
    setup.launch.params.addU32(static_cast<std::uint32_t>(wall));
    setup.launch.params.addU32(static_cast<std::uint32_t>(src));
    setup.launch.params.addU32(static_cast<std::uint32_t>(result));
    setup.launch.params.addU32(g.cols);
    setup.launch.params.addU32(g.rows - 1);

    setup.outputs.push_back({"result", result, 4ull * g.cols,
                             faults::ElemType::U32, 0.0});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makePathfinderKernels()
{
    KernelSpec spec;
    spec.suite = "Rodinia";
    spec.application = "PathFinder";
    spec.kernelName = "dynproc_kernel";
    spec.id = "K1";
    spec.setup = setupPathfinder;
    return {spec};
}

} // namespace fsp::apps
