/**
 * @file
 * Rodinia K-Means:
 *  - invert_mapping (K1): transposes the point-major feature array to
 *    feature-major layout, one thread per point with an nfeatures-long
 *    copy loop (34 iterations at paper scale, Table VII);
 *  - kmeansPoint (K2): assigns each point to the nearest cluster with
 *    an nclusters x nfeatures nested loop (5 x 34 = 170 inner
 *    iterations at paper scale) and predicated minimum tracking.
 *
 * The launch rounds the point count up to whole CTAs, so tail threads
 * exit immediately -- the "very few instructions" representative group
 * the paper observes for these kernels.
 */

#include "apps/kernel_util.hh"
#include "ptx/assembler.hh"

namespace fsp::apps {

namespace {

struct KmeansGeometry
{
    unsigned threads;
    unsigned points;
    unsigned features;
    unsigned clusters;
    unsigned block;
};

KmeansGeometry
geometry(Scale scale)
{
    if (scale == Scale::Paper)
        return {2304, 2200, 34, 5, 256};
    return {96, 90, 8, 3, 32};
}

std::string
invertMappingSource()
{
    // Params: [0]=input (point-major), [4]=output (feature-major),
    // [8]=npoints, [12]=nfeatures.
    std::string s;
    s += asmGlobalIdX(1); // $r1 = point
    s += R"(
    ld.param.u32 $r2, [8];        // npoints
    set.ge.u32.u32 $p0|$o127, $r1, $r2;
    @$p0.ne retp;                 // tail exit
    ld.param.u32 $r3, [12];       // nfeatures
    ld.param.u32 $r4, [0];        // input
    mul.lo.u32 $r5, $r1, $r3;
    shl.u32 $r5, $r5, 0x00000002;
    add.u32 $r4, $r4, $r5;        // &input[p*nf]
    ld.param.u32 $r6, [4];        // output
    shl.u32 $r7, $r1, 0x00000002;
    add.u32 $r6, $r6, $r7;        // &output[p]
    shl.u32 $r8, $r2, 0x00000002; // npoints stride bytes
    mov.u32 $r9, 0x00000000;      // f
im_loop:
    ld.global.f32 $r10, [$r4];
    st.global.f32 [$r6], $r10;
    add.u32 $r4, $r4, 0x00000004;
    add.u32 $r6, $r6, $r8;
    add.u32 $r9, $r9, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r9, $r3;
    @$p0.ne bra im_loop;
    retp;
)";
    return s;
}

std::string
kmeansPointSource()
{
    // Params: [0]=features (point-major), [4]=clusters, [8]=membership,
    // [12]=npoints, [16]=nclusters, [20]=nfeatures.
    std::string s;
    s += asmGlobalIdX(1); // $r1 = point
    s += R"(
    ld.param.u32 $r2, [12];       // npoints
    set.ge.u32.u32 $p0|$o127, $r1, $r2;
    @$p0.ne retp;                 // tail exit
    ld.param.u32 $r3, [16];       // nclusters
    ld.param.u32 $r4, [20];       // nfeatures
    ld.param.u32 $r5, [0];        // features
    mul.lo.u32 $r6, $r1, $r4;
    shl.u32 $r6, $r6, 0x00000002;
    add.u32 $r5, $r5, $r6;        // &features[p*nf]
    ld.param.u32 $r7, [4];        // cluster cursor (walks all clusters)
    mov.f32 $r8, 3.0e38;          // min_dist
    mov.u32 $r9, 0x00000000;      // best cluster
    mov.u32 $r10, 0x00000000;     // c
kp_outer:
    mov.f32 $r11, 0.0;            // dist
    mov.u32 $r12, 0x00000000;     // f
    mov.u32 $r13, $r5;            // feature cursor
kp_inner:
    ld.global.f32 $r14, [$r13];
    ld.global.f32 $r15, [$r7];
    sub.f32 $r16, $r14, $r15;
    mad.f32 $r11, $r16, $r16, $r11;
    add.u32 $r13, $r13, 0x00000004;
    add.u32 $r7, $r7, 0x00000004;
    add.u32 $r12, $r12, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r12, $r4;
    @$p0.ne bra kp_inner;
    set.lt.f32.f32 $p1|$o127, $r11, $r8;
    @$p1.ne mov.f32 $r8, $r11;    // predicated min tracking
    @$p1.ne mov.u32 $r9, $r10;
    add.u32 $r10, $r10, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r10, $r3;
    @$p0.ne bra kp_outer;
    ld.param.u32 $r17, [8];       // membership
    shl.u32 $r18, $r1, 0x00000002;
    add.u32 $r17, $r17, $r18;
    st.global.u32 [$r17], $r9;
    retp;
)";
    return s;
}

sim::GlobalMemory
makeMemory(const KmeansGeometry &g, std::uint64_t seed, std::uint64_t &feat,
           std::uint64_t &aux, std::uint64_t &out, bool transpose)
{
    sim::GlobalMemory memory(1u << 23);
    feat = memory.allocate(4ull * g.points * g.features);
    uploadFloats(memory, feat,
                 randomFloats(g.points * g.features, seed + 1));
    if (transpose) {
        aux = 0;
        out = memory.allocate(4ull * g.points * g.features);
        uploadFloats(memory, out,
                     std::vector<float>(g.points * g.features, 0.0f));
    } else {
        aux = memory.allocate(4ull * g.clusters * g.features);
        uploadFloats(memory, aux,
                     randomFloats(g.clusters * g.features, seed + 2));
        out = memory.allocate(4ull * g.points);
        uploadU32(memory, out,
                  std::vector<std::uint32_t>(g.points, 0));
    }
    return memory;
}

KernelSetup
setupInvertMapping(Scale scale, std::uint64_t seed)
{
    KmeansGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("invert_mapping", invertMappingSource());

    std::uint64_t feat = 0, aux = 0, out = 0;
    setup.memory = makeMemory(g, seed, feat, aux, out, true);

    setup.launch.grid = {g.threads / g.block, 1, 1};
    setup.launch.block = {g.block, 1, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(feat));
    setup.launch.params.addU32(static_cast<std::uint32_t>(out));
    setup.launch.params.addU32(g.points);
    setup.launch.params.addU32(g.features);

    setup.outputs.push_back({"output", out,
                             4ull * g.points * g.features,
                             faults::ElemType::F32, 0.0, g.points});
    return setup;
}

KernelSetup
setupKmeansPoint(Scale scale, std::uint64_t seed)
{
    KmeansGeometry g = geometry(scale);

    KernelSetup setup;
    setup.program = ptx::assemble("kmeansPoint", kmeansPointSource());

    std::uint64_t feat = 0, clusters = 0, membership = 0;
    setup.memory =
        makeMemory(g, seed, feat, clusters, membership, false);

    setup.launch.grid = {g.threads / g.block, 1, 1};
    setup.launch.block = {g.block, 1, 1};
    setup.launch.params.addU32(static_cast<std::uint32_t>(feat));
    setup.launch.params.addU32(static_cast<std::uint32_t>(clusters));
    setup.launch.params.addU32(static_cast<std::uint32_t>(membership));
    setup.launch.params.addU32(g.points);
    setup.launch.params.addU32(g.clusters);
    setup.launch.params.addU32(g.features);

    setup.outputs.push_back({"membership", membership, 4ull * g.points,
                             faults::ElemType::U32, 0.0});
    return setup;
}

} // namespace

std::vector<KernelSpec>
makeKmeansKernels()
{
    std::vector<KernelSpec> specs;
    specs.push_back({"Rodinia", "K-Means", "invert_mapping", "K1",
                     setupInvertMapping});
    specs.push_back({"Rodinia", "K-Means", "kmeansPoint", "K2",
                     setupKmeansPoint});
    return specs;
}

} // namespace fsp::apps
